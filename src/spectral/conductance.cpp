#include "spectral/conductance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "rng/stream.hpp"
#include "util/assert.hpp"

namespace cobra::spectral {

double cut_conductance(const graph::Graph& g,
                       const std::vector<graph::VertexId>& s) {
  const graph::VertexId n = g.num_vertices();
  COBRA_CHECK(!s.empty() && s.size() < n);
  std::vector<bool> in_s(n, false);
  for (const graph::VertexId u : s) in_s[u] = true;

  std::uint64_t d_s = 0, cut = 0;
  for (const graph::VertexId u : s) {
    d_s += g.degree(u);
    for (const graph::VertexId v : g.neighbors(u))
      if (!in_s[v]) ++cut;
  }
  const std::uint64_t d_total = g.degree_sum();
  const std::uint64_t denom = std::min(d_s, d_total - d_s);
  COBRA_CHECK_MSG(denom > 0, "cut side has zero volume");
  return static_cast<double>(cut) / static_cast<double>(denom);
}

double exact_conductance(const graph::Graph& g) {
  const graph::VertexId n = g.num_vertices();
  COBRA_CHECK(n >= 2 && n <= 24);
  const std::uint64_t d_total = g.degree_sum();

  double best = std::numeric_limits<double>::infinity();
  // Fix vertex n-1 outside S: each unordered cut is visited exactly once.
  const std::uint32_t limit = 1u << (n - 1);
  for (std::uint32_t mask = 1; mask < limit; ++mask) {
    std::uint64_t d_s = 0, cut = 0;
    for (graph::VertexId u = 0; u < n - 1; ++u) {
      if (((mask >> u) & 1u) == 0) continue;
      d_s += g.degree(u);
      for (const graph::VertexId v : g.neighbors(u))
        if (v == n - 1 || ((mask >> v) & 1u) == 0) ++cut;
    }
    const std::uint64_t denom = std::min(d_s, d_total - d_s);
    if (denom == 0) continue;
    best = std::min(best, static_cast<double>(cut) /
                              static_cast<double>(denom));
  }
  return best;
}

double sweep_conductance(const graph::Graph& g,
                         const std::vector<double>& score) {
  const graph::VertexId n = g.num_vertices();
  COBRA_CHECK(score.size() == n && n >= 2);

  std::vector<graph::VertexId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](graph::VertexId a, graph::VertexId b) {
              return score[a] < score[b];
            });

  std::vector<bool> in_s(n, false);
  const std::uint64_t d_total = g.degree_sum();
  std::uint64_t d_s = 0;
  std::int64_t cut = 0;
  double best = std::numeric_limits<double>::infinity();
  for (graph::VertexId i = 0; i + 1 < n; ++i) {
    const graph::VertexId u = order[i];
    in_s[u] = true;
    d_s += g.degree(u);
    // Adding u flips its edges: edges to S leave the cut, edges to S-bar join.
    for (const graph::VertexId v : g.neighbors(u))
      cut += in_s[v] ? -1 : +1;
    const std::uint64_t denom = std::min(d_s, d_total - d_s);
    if (denom == 0) continue;
    best = std::min(best, static_cast<double>(cut) /
                              static_cast<double>(denom));
  }
  return best;
}

double estimate_conductance(const graph::Graph& g, std::uint64_t seed) {
  const graph::VertexId n = g.num_vertices();
  COBRA_CHECK(n >= 2);
  // A few dozen deflated power steps give a usable Fiedler-ish direction;
  // the sweep bound is valid regardless of convergence quality.
  rng::Rng rng = rng::make_stream(seed, 0xC0DD);
  std::vector<double> x(n), y(n), inv_sqrt_deg(n), principal(n);
  for (graph::VertexId u = 0; u < n; ++u) {
    const double d = static_cast<double>(g.degree(u));
    COBRA_CHECK_MSG(d >= 1.0, "isolated vertex");
    inv_sqrt_deg[u] = 1.0 / std::sqrt(d);
    principal[u] = std::sqrt(d);
  }
  double pn = 0.0;
  for (const double value : principal) pn += value * value;
  pn = std::sqrt(pn);
  for (double& value : principal) value /= pn;

  for (double& value : x) value = rng.uniform01() - 0.5;
  for (int it = 0; it < 80; ++it) {
    double c = 0.0;
    for (graph::VertexId u = 0; u < n; ++u) c += x[u] * principal[u];
    for (graph::VertexId u = 0; u < n; ++u) x[u] -= c * principal[u];
    // Half-lazy operator (I + N)/2 avoids bipartite sign oscillation.
    for (graph::VertexId u = 0; u < n; ++u) {
      double acc = 0.0;
      for (const graph::VertexId v : g.neighbors(u))
        acc += x[v] * inv_sqrt_deg[v];
      y[u] = 0.5 * (x[u] + acc * inv_sqrt_deg[u]);
    }
    double yn = 0.0;
    for (const double value : y) yn += value * value;
    yn = std::sqrt(yn);
    if (yn < 1e-300) break;
    for (graph::VertexId u = 0; u < n; ++u) x[u] = y[u] / yn;
  }
  // Sweep on the D^{-1/2}-scaled embedding (standard Cheeger rounding).
  for (graph::VertexId u = 0; u < n; ++u) x[u] *= inv_sqrt_deg[u];
  return sweep_conductance(g, x);
}

}  // namespace cobra::spectral
