// Deflated power iteration for the paper's lambda = max_{i>=2} |mu_i| of the
// walk matrix, computed on the symmetric similar matrix
// N = D^{-1/2} A D^{-1/2}.
//
// We iterate N^2 on the orthogonal complement of the known principal
// eigenvector (sqrt(deg)): N^2's dominant eigenvalue on that subspace is
// exactly lambda^2, and squaring makes the method converge even when the
// spectrum contains a +-lambda pair (bipartite graphs).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace cobra::spectral {

struct PowerResult {
  double lambda = 0.0;      // max_{i >= 2} |mu_i|, in [0, 1]
  std::uint32_t iterations = 0;
  bool converged = false;
};

/// Runs at most `max_iterations` squared-operator steps, stopping when the
/// Rayleigh estimate changes by < `tolerance`.
PowerResult power_lambda(const graph::Graph& g, rng::Rng& rng,
                         std::uint32_t max_iterations = 2000,
                         double tolerance = 1e-10);

}  // namespace cobra::spectral
