#include "spectral/dense.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace cobra::spectral {

std::vector<double> jacobi_eigenvalues(DenseSymmetric a, double tolerance,
                                       int max_sweeps) {
  const std::size_t n = a.size();
  if (n == 0) return {};
  if (n == 1) return {a.at(0, 0)};

  auto off_diagonal_norm = [&] {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) s += a.at(i, j) * a.at(i, j);
    return std::sqrt(2.0 * s);
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= tolerance) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a.at(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a.at(p, p);
        const double aqq = a.at(q, q);
        // Rotation angle zeroing a[p][q] (Golub & Van Loan §8.5).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a.at(k, p);
          const double akq = a.at(k, q);
          a.at(k, p) = c * akp - s * akq;
          a.at(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a.at(p, k);
          const double aqk = a.at(q, k);
          a.at(p, k) = c * apk - s * aqk;
          a.at(q, k) = s * apk + c * aqk;
        }
      }
    }
  }

  std::vector<double> eig(n);
  for (std::size_t i = 0; i < n; ++i) eig[i] = a.at(i, i);
  std::sort(eig.begin(), eig.end());
  return eig;
}

DenseSymmetric normalized_adjacency_dense(const graph::Graph& g) {
  const std::size_t n = g.num_vertices();
  COBRA_CHECK_MSG(g.min_degree() >= 1,
                  "normalized adjacency needs min degree >= 1");
  DenseSymmetric a(n);
  std::vector<double> inv_sqrt_deg(n);
  for (graph::VertexId u = 0; u < n; ++u)
    inv_sqrt_deg[u] = 1.0 / std::sqrt(static_cast<double>(g.degree(u)));
  for (graph::VertexId u = 0; u < n; ++u)
    for (const graph::VertexId v : g.neighbors(u))
      a.at(u, v) = inv_sqrt_deg[u] * inv_sqrt_deg[v];
  return a;
}

std::vector<double> walk_spectrum_dense(const graph::Graph& g) {
  return jacobi_eigenvalues(normalized_adjacency_dense(g));
}

}  // namespace cobra::spectral
