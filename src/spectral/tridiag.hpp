// Symmetric tridiagonal eigenvalues (the reduction target of Lanczos).
#pragma once

#include <vector>

namespace cobra::spectral {

/// Eigenvalues (ascending) of the symmetric tridiagonal matrix with
/// diagonal `diag` (size k) and off-diagonal `off` (size k-1), via the
/// implicit QL algorithm with Wilkinson shifts (no eigenvectors).
std::vector<double> tridiagonal_eigenvalues(std::vector<double> diag,
                                            std::vector<double> off);

}  // namespace cobra::spectral
