#include "spectral/mixing.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace cobra::spectral {

double relaxation_time(double lambda) {
  COBRA_CHECK_MSG(lambda < 1.0, "relaxation time needs a positive gap");
  return 1.0 / (1.0 - lambda);
}

double mixing_time_bound(const graph::Graph& g, double lambda, double eps) {
  COBRA_CHECK(eps > 0.0 && eps < 1.0);
  COBRA_CHECK(g.num_edges() >= 1);
  const double pi_min = static_cast<double>(g.min_degree()) /
                        static_cast<double>(g.degree_sum());
  COBRA_CHECK_MSG(pi_min > 0.0, "isolated vertex");
  return relaxation_time(lambda) * std::log(1.0 / (eps * pi_min));
}

void walk_distribution_step(const graph::Graph& g,
                            const std::vector<double>& x,
                            std::vector<double>& next, double laziness) {
  const graph::VertexId n = g.num_vertices();
  COBRA_CHECK(x.size() == n);
  next.assign(n, 0.0);
  for (graph::VertexId u = 0; u < n; ++u) {
    const double mass = x[u];
    if (mass == 0.0) continue;
    if (laziness > 0.0) next[u] += laziness * mass;
    const double share =
        (1.0 - laziness) * mass / static_cast<double>(g.degree(u));
    for (const graph::VertexId v : g.neighbors(u)) next[v] += share;
  }
}

double tv_distance_to_stationary(const graph::Graph& g,
                                 const std::vector<double>& x) {
  COBRA_CHECK(x.size() == g.num_vertices());
  const double two_m = static_cast<double>(g.degree_sum());
  double tv = 0.0;
  for (graph::VertexId u = 0; u < g.num_vertices(); ++u) {
    const double pi = static_cast<double>(g.degree(u)) / two_m;
    tv += std::fabs(x[u] - pi);
  }
  return tv / 2.0;
}

std::uint64_t exact_mixing_time(const graph::Graph& g,
                                graph::VertexId source, double eps,
                                double laziness, std::uint64_t max_steps) {
  COBRA_CHECK(source < g.num_vertices());
  COBRA_CHECK(g.min_degree() >= 1);
  std::vector<double> x(g.num_vertices(), 0.0), next;
  x[source] = 1.0;
  if (tv_distance_to_stationary(g, x) <= eps) return 0;
  for (std::uint64_t t = 1; t <= max_steps; ++t) {
    walk_distribution_step(g, x, next, laziness);
    x.swap(next);
    if (tv_distance_to_stationary(g, x) <= eps) return t;
  }
  return max_steps + 1;
}

}  // namespace cobra::spectral
