// The paper's motivating scenario: spread one item of information through a
// network quickly while keeping per-vertex transmissions bounded per round.
//
// Compares four protocols on the same topologies:
//   * COBRA b=2 (the paper's process: 2 messages per active vertex/round)
//   * simple random walk (b=1: minimal traffic, slow)
//   * k independent random walks (k = log2 n)
//   * push rumour spreading (fast, but every informed vertex sends forever)
//
// Reports rounds to full coverage and total transmissions.
#include <cmath>
#include <iostream>

#include "baselines/multi_walk.hpp"
#include "baselines/push_gossip.hpp"
#include "baselines/random_walk.hpp"
#include "core/cobra.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "sim/experiment.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/stats.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace {

struct ProtocolRow {
  double rounds = 0.0;
  double transmissions = 0.0;
};

ProtocolRow run_cobra(const cobra::graph::Graph& g, std::uint64_t seed,
                      std::uint64_t reps) {
  using namespace cobra;
  std::vector<double> rounds(reps), tx(reps);
  sim::parallel_replicates(reps, seed, [&](std::uint64_t i, rng::Rng& rng) {
    core::CobraProcess p(g);
    p.reset(graph::VertexId{0});
    const auto c = p.run_until_cover(rng, 100'000'000);
    rounds[i] = static_cast<double>(c.value());
    tx[i] = static_cast<double>(p.transmissions());
  });
  return {sim::mean(rounds), sim::mean(tx)};
}

template <typename F>
ProtocolRow run_baseline(std::uint64_t seed, std::uint64_t reps, F&& once) {
  using namespace cobra;
  std::vector<double> rounds(reps), tx(reps);
  sim::parallel_replicates(reps, seed, [&](std::uint64_t i, rng::Rng& rng) {
    const auto [r, t] = once(rng);
    rounds[i] = r;
    tx[i] = t;
  });
  return {sim::mean(rounds), sim::mean(tx)};
}

}  // namespace

int main() {
  using namespace cobra;
  const std::uint64_t seed = util::global_seed();
  const auto reps = sim::default_replicates(16);

  rng::Rng graph_rng = rng::make_stream(seed, 99);
  const graph::Graph topologies[] = {
      graph::complete(512),
      graph::connected_random_regular(1024, 8, graph_rng),
      graph::torus_power(32, 2),
      graph::cycle(512),
  };

  util::Table table({"graph", "protocol", "rounds(mean)", "msgs(mean)"});
  for (const auto& g : topologies) {
    const auto k = static_cast<std::uint32_t>(
        std::ceil(std::log2(static_cast<double>(g.num_vertices()))));

    const ProtocolRow cobra_row =
        run_cobra(g, rng::derive_seed(seed, 1), reps);
    table.row().add(g.name()).add("COBRA b=2").add(cobra_row.rounds, 1)
        .add(cobra_row.transmissions, 0);

    const ProtocolRow walk = run_baseline(
        rng::derive_seed(seed, 2), reps, [&](rng::Rng& rng) {
          const auto r = baselines::random_walk_cover(g, 0, rng, 1ull << 34);
          return std::pair<double, double>(static_cast<double>(r.steps),
                                           static_cast<double>(r.steps));
        });
    table.row().add("").add("random walk b=1").add(walk.rounds, 1)
        .add(walk.transmissions, 0);

    const ProtocolRow multi = run_baseline(
        rng::derive_seed(seed, 3), reps, [&](rng::Rng& rng) {
          const auto r = baselines::multi_walk_cover(g, 0, k, rng, 1ull << 30);
          return std::pair<double, double>(static_cast<double>(r.rounds),
                                           static_cast<double>(
                                               r.transmissions));
        });
    table.row().add("").add(std::to_string(k) + " indep. walks")
        .add(multi.rounds, 1).add(multi.transmissions, 0);

    const ProtocolRow push = run_baseline(
        rng::derive_seed(seed, 4), reps, [&](rng::Rng& rng) {
          const auto r = baselines::push_gossip_cover(g, 0, rng, 1ull << 24);
          return std::pair<double, double>(static_cast<double>(r.rounds),
                                           static_cast<double>(
                                               r.transmissions));
        });
    table.row().add("").add("push gossip").add(push.rounds, 1)
        .add(push.transmissions, 0);
    table.rule();
  }

  std::cout << "Information spreading: rounds vs transmissions ("
            << reps << " replicates each)\n\n";
  table.print(std::cout);
  std::cout << "\nReading: COBRA is orders of magnitude faster than a "
               "single walk at ~2x its per-round cost,\nand close to push "
               "gossip while sending far fewer total messages on "
               "low-degree graphs.\n";
  return 0;
}
