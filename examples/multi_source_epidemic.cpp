// Multi-source BIPS: several persistently infected hosts.
//
// The paper motivates BIPS via epidemics where "a particular host can
// become persistently infected"; with several such hosts the infection time
// drops roughly with the maximum distance to a source. This example places
// k sources (spread evenly) on a large torus and a cycle and reports how
// infec(S) falls with k.
#include <iostream>

#include "core/bips.hpp"
#include "graph/generators.hpp"
#include "rng/stream.hpp"
#include "sim/experiment.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/stats.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main() {
  using namespace cobra;
  const std::uint64_t seed = util::global_seed();
  const auto reps = sim::default_replicates(32);

  struct Scenario {
    graph::Graph g;
  };
  const Scenario scenarios[] = {
      {graph::torus_power(33, 2)},
      {graph::cycle(512)},
  };

  util::Table table({"graph", "#sources", "infec mean", "infec p95",
                     "speedup vs 1"});
  for (const auto& sc : scenarios) {
    const graph::Graph& g = sc.g;
    const graph::VertexId n = g.num_vertices();
    double base = 0.0;
    for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
      // Sources spread evenly over the vertex id range (ids are spatially
      // meaningful for tori/cycles).
      std::vector<graph::VertexId> sources;
      for (std::uint32_t i = 0; i < k; ++i)
        sources.push_back(static_cast<graph::VertexId>(
            (static_cast<std::uint64_t>(i) * n) / k));

      std::vector<double> times(reps);
      sim::parallel_replicates(
          reps, rng::derive_seed(seed, 700 + k), [&](std::uint64_t i,
                                                     rng::Rng& rng) {
            core::BipsProcess p(g, 0);
            p.reset(std::span<const graph::VertexId>(sources.data(),
                                                     sources.size()));
            times[i] =
                static_cast<double>(*p.run_until_full(rng, 100'000'000));
          });
      const auto s = sim::summarize(times);
      if (k == 1) base = s.mean;
      table.row().add(g.name()).add(static_cast<std::uint64_t>(k))
          .add(s.mean, 1).add(s.p95, 1).add(base / s.mean, 2);
    }
    table.rule();
  }

  std::cout << "BIPS with k persistent sources (b = 2), " << reps
            << " replicates\n\n";
  table.print(std::cout);
  std::cout << "\nOn geometric graphs the infection time is governed by the "
               "farthest distance to a source,\nso k evenly-spread sources "
               "give roughly a k-fold speedup on the cycle and sqrt(k)-ish "
               "on the torus diameter term.\n";
  return 0;
}
