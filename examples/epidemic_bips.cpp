// BIPS as an SIS epidemic with a persistently infected host (the paper's
// Section 1 interpretation): vertices refresh their infection status every
// round by polling b random contacts; one host never recovers.
//
// Traces the infection curve |A_t| on several topologies, prints the curve
// and writes epidemic_curves.csv for plotting. Demonstrates the three-phase
// structure the paper's regular-graph analysis formalises: slow start-up,
// exponential middle, saturating tail.
#include <iostream>

#include "core/bips.hpp"
#include "core/estimators.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "spectral/spectral.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main() {
  using namespace cobra;
  const std::uint64_t seed = util::global_seed();
  const std::uint64_t reps = sim::default_replicates(32);

  rng::Rng graph_rng = rng::make_stream(seed, 7);
  struct Scenario {
    graph::Graph g;
    std::uint64_t rounds;
  };
  Scenario scenarios[] = {
      {graph::complete(512), 24},
      {graph::connected_random_regular(512, 4, graph_rng), 40},
      {graph::torus_power(22, 2), 120},  // 484 vertices
      {graph::cycle(256), 700},
  };

  util::CsvWriter csv("epidemic_curves.csv", {"graph", "round", "mean_size"});
  util::Table table({"graph", "lambda", "rounds to 50%", "rounds to 100%",
                     "mean infec(v)"});

  for (auto& sc : scenarios) {
    const auto curve = core::average_bips_growth(sc.g, core::BipsOptions{}, 0,
                                                 sc.rounds, reps,
                                                 rng::derive_seed(seed, 11));
    for (std::size_t t = 0; t < curve.size(); ++t)
      csv.row().add(sc.g.name()).add(static_cast<std::uint64_t>(t))
          .add(curve[t]);

    const double n = static_cast<double>(sc.g.num_vertices());
    std::uint64_t t_half = sc.rounds, t_full = sc.rounds;
    for (std::size_t t = 0; t < curve.size(); ++t) {
      if (curve[t] >= n / 2 && t_half == sc.rounds) t_half = t;
      if (curve[t] >= n - 0.5 && t_full == sc.rounds) t_full = t;
    }
    const auto infec = core::estimate_bips_infection(
        sc.g, core::BipsOptions{}, 0, reps, rng::derive_seed(seed, 12),
        100'000'000);
    const auto spec = spectral::compute_lambda_cached(sc.g, seed);
    table.row().add(sc.g.name()).add(spec.lambda, 4)
        .add(static_cast<std::uint64_t>(t_half))
        .add(static_cast<std::uint64_t>(t_full))
        .add(sim::mean(infec.rounds), 1);
  }
  csv.close();

  std::cout << "BIPS epidemic with persistent source (b = 2), mean over "
            << reps << " runs\n\n";
  table.print(std::cout);
  std::cout << "\ncurves -> epidemic_curves.csv (graph, round, mean |A_t|)\n"
            << "Note the spectral gap ordering: larger gap => faster "
               "saturation (Lemma 4.1).\n";
  return 0;
}
