// Quickstart: build a graph, run the COBRA process, report the cover time
// against the paper's bounds.
//
//   ./quickstart [n]          (default n = 1024; uses a random 4-regular graph)
#include <cstdlib>
#include <iostream>

#include "core/bounds.hpp"
#include "core/cobra.hpp"
#include "core/estimators.hpp"
#include "graph/algorithms.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "spectral/spectral.hpp"
#include "util/env.hpp"

int main(int argc, char** argv) {
  using namespace cobra;

  const graph::VertexId n =
      argc > 1 ? static_cast<graph::VertexId>(std::atoi(argv[1])) : 1024;
  const std::uint64_t seed = util::global_seed();

  // 1. Build a connected random 4-regular graph (an expander w.h.p.).
  rng::Rng graph_rng = rng::make_stream(seed, 0);
  const graph::Graph g = graph::connected_random_regular(n, 4, graph_rng);
  std::cout << "graph: " << g.name() << "  n=" << g.num_vertices()
            << " m=" << g.num_edges() << "\n";

  // 2. Its spectral gap — the paper's key parameter for Theorem 1.2.
  const auto spec = spectral::compute_lambda_cached(g, seed);
  std::cout << "lambda = " << spec.lambda << " (gap " << spec.gap
            << ", method " << (spec.exact ? "dense" : "Lanczos") << ")\n";

  // 3. One COBRA run, narrated.
  core::CobraProcess process(g);  // b = 2
  rng::Rng rng = rng::make_stream(seed, 1);
  process.reset(graph::VertexId{0});
  while (!process.all_visited()) {
    process.step(rng);
    if (process.round() <= 10 || process.round() % 5 == 0)
      std::cout << "  round " << process.round() << ": |C_t|="
                << process.active().size() << " visited "
                << process.num_visited() << "/" << n << "\n";
  }
  std::cout << "single run: cover time " << process.round() << " rounds, "
            << process.transmissions() << " transmissions\n";

  // 4. Monte-Carlo estimate with the parallel estimator.
  const auto samples =
      core::estimate_cobra_cover(g, core::ProcessOptions{}, 0,
                                 sim::default_replicates(32), seed,
                                 1'000'000);
  const auto summary = sim::summarize(samples.rounds);
  std::cout << "cover time over " << summary.count
            << " replicates: mean=" << summary.mean
            << " median=" << summary.median << " p95=" << summary.p95
            << " max=" << summary.max << "\n";

  // 5. Compare against the paper's bound (constant 1).
  const double bound =
      core::bound_thm12_regular(g.num_vertices(), 4, spec.lambda);
  std::cout << "Theorem 1.2 bound (r/gap + r^2) ln n = " << bound
            << "  -> measured/bound = " << summary.p95 / bound << "\n";
  return 0;
}
