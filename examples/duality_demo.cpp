// Theorem 1.3 live: the COBRA <-> BIPS duality.
//
// Draws ONE shared table of neighbour selections omega(u, t), runs COBRA
// forward and BIPS backward through it, and shows that the indicator
// "COBRA from C hits v within T" always equals "BIPS from v infects C by
// round T". Then cross-checks the probabilities three ways: coupled
// frequency, independent Monte-Carlo of both processes, and the exact
// subset-distribution DP.
#include <iostream>

#include "core/bips_exact.hpp"
#include "core/duality.hpp"
#include "graph/generators.hpp"
#include "rng/stream.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main() {
  using namespace cobra;
  const std::uint64_t seed = util::global_seed();

  const graph::Graph g = graph::petersen();
  const graph::VertexId v = 0;                       // COBRA target / BIPS source
  const std::vector<graph::VertexId> c_set = {6, 9}; // COBRA start set
  const core::ProcessOptions opt;                    // b = 2

  std::cout << "Graph: " << g.name() << ", target/source v=" << v
            << ", C={6,9}\n\n";

  // 1. A handful of coupled runs, narrated.
  std::cout << "Coupled runs (shared omega, BIPS reads it time-reversed):\n";
  for (int rep = 0; rep < 6; ++rep) {
    auto rng = rng::make_stream(seed, static_cast<std::uint64_t>(rep));
    const core::SelectionTable table(g, /*rounds=*/3, opt, rng);
    const bool cobra_hits = core::cobra_visits_with_table(g, c_set, v, table);
    const bool bips_reaches = core::bips_infects_with_table(g, v, c_set, table);
    std::cout << "  omega #" << rep << ": COBRA hits v: "
              << (cobra_hits ? "yes" : "no ")
              << "   BIPS infects C: " << (bips_reaches ? "yes" : "no ")
              << "   " << (cobra_hits == bips_reaches ? "EQUAL" : "MISMATCH!")
              << "\n";
  }

  // 2. Probability comparison across horizons.
  util::Table table({"T", "coupled disagreements", "P(miss) COBRA MC",
                     "P(miss) BIPS MC", "P(miss) exact DP"});
  for (const std::uint64_t T : {1ull, 2ull, 3ull, 5ull, 8ull}) {
    const auto est = core::check_duality(g, v, c_set, T, opt, 4000,
                                         rng::derive_seed(seed, T));
    const double exact = core::bips_exact_miss_probability(g, v, c_set, T, opt);
    table.row().add(T).add(est.coupled_disagreements)
        .add(est.cobra_miss, 4).add(est.bips_miss, 4).add(exact, 4);
  }
  std::cout << "\nP(Hit(v) > T | C_0 = C)  ==  P(C inter A_T = empty):\n\n";
  table.print(std::cout);
  std::cout << "\nThe two Monte-Carlo columns estimate the same number "
               "(Theorem 1.3); the DP column is its exact value.\n";
  return 0;
}
