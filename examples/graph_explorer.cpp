// Graph explorer: generate any built-in family, print its structural and
// spectral profile, and evaluate every cover-time bound from the paper.
//
//   ./graph_explorer <family> [args...]
// Families:
//   complete n | cycle n | path n | star n | hypercube d | torus side dim
//   grid a b | tree n | barbell k | lollipop k tail | petersen
//   regular n r | gnp n c | ws n k beta | ba n m
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/bounds.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "spectral/conductance.hpp"
#include "spectral/spectral.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace {

void usage() {
  std::cout <<
      "usage: graph_explorer <family> [args...]\n"
      "  complete n | cycle n | path n | star n | hypercube d\n"
      "  torus side dim | grid a b | tree n | barbell k | lollipop k tail\n"
      "  petersen | regular n r | gnp n c | ws n k beta | ba n m\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cobra;
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string family = argv[1];
  auto arg = [&](int i, long fallback) {
    return argc > i + 1 ? std::atol(argv[i + 1]) : fallback;
  };
  auto argf = [&](int i, double fallback) {
    return argc > i + 1 ? std::atof(argv[i + 1]) : fallback;
  };

  rng::Rng rng = rng::make_stream(util::global_seed(), 0);
  graph::Graph g;
  if (family == "complete") g = graph::complete(static_cast<graph::VertexId>(arg(1, 64)));
  else if (family == "cycle") g = graph::cycle(static_cast<graph::VertexId>(arg(1, 64)));
  else if (family == "path") g = graph::path(static_cast<graph::VertexId>(arg(1, 64)));
  else if (family == "star") g = graph::star(static_cast<graph::VertexId>(arg(1, 64)));
  else if (family == "hypercube") g = graph::hypercube(static_cast<std::uint32_t>(arg(1, 8)));
  else if (family == "torus") g = graph::torus_power(static_cast<graph::VertexId>(arg(1, 16)), static_cast<std::uint32_t>(arg(2, 2)));
  else if (family == "grid") g = graph::grid({static_cast<graph::VertexId>(arg(1, 16)), static_cast<graph::VertexId>(arg(2, 16))}, false);
  else if (family == "tree") g = graph::binary_tree(static_cast<graph::VertexId>(arg(1, 63)));
  else if (family == "barbell") g = graph::barbell(static_cast<graph::VertexId>(arg(1, 16)), 1);
  else if (family == "lollipop") g = graph::lollipop(static_cast<graph::VertexId>(arg(1, 16)), static_cast<graph::VertexId>(arg(2, 16)));
  else if (family == "petersen") g = graph::petersen();
  else if (family == "regular") g = graph::connected_random_regular(static_cast<graph::VertexId>(arg(1, 256)), static_cast<std::uint32_t>(arg(2, 4)), rng);
  else if (family == "gnp") g = graph::connected_erdos_renyi(static_cast<graph::VertexId>(arg(1, 256)), argf(2, 2.0), rng);
  else if (family == "ws") g = graph::watts_strogatz(static_cast<graph::VertexId>(arg(1, 256)), static_cast<std::uint32_t>(arg(2, 4)), argf(3, 0.1), rng);
  else if (family == "ba") g = graph::barabasi_albert(static_cast<graph::VertexId>(arg(1, 256)), static_cast<std::uint32_t>(arg(2, 3)), rng);
  else {
    usage();
    return 1;
  }

  const auto stats = graph::degree_stats(g);
  const auto diam = graph::diameter_estimate(g);
  const auto spec = spectral::compute_lambda_cached(g, util::global_seed());
  const double phi = spectral::estimate_conductance(g, util::global_seed());

  std::cout << "name:        " << g.name() << "\n"
            << "n, m:        " << g.num_vertices() << ", " << g.num_edges()
            << "\n"
            << "degree:      min " << stats.min << ", mean " << stats.mean
            << ", max " << stats.max
            << (g.is_regular() ? "  (regular)" : "") << "\n"
            << "connected:   " << (graph::is_connected(g) ? "yes" : "NO")
            << "\n"
            << "bipartite:   " << (graph::is_bipartite(g) ? "yes" : "no")
            << "\n"
            << "diameter:    " << diam.value
            << (diam.exact ? "" : " (double-sweep lower bound)") << "\n"
            << "lambda:      " << spec.lambda << "  (gap " << spec.gap
            << ", " << (spec.exact ? "exact" : "iterative") << ")\n"
            << "conductance: <= " << phi << " (sweep-cut bound)\n"
            << "gap margin:  (1-lambda)/sqrt(log n/n) = "
            << spectral::gap_condition_margin(spec.lambda, g.num_vertices())
            << "  (Thm 1.2 wants this > C)\n\n";

  // Bipartite (or numerically-borderline) graphs have lambda = 1: the
  // spectral bounds are vacuous for the plain process, so omit them.
  const bool usable_gap = spec.lambda < 1.0 - 1e-6;
  util::Table table({"bound", "rounds (constant 1)"});
  for (const auto& b :
       core::bound_report(g,
                          usable_gap ? std::optional<double>(spec.lambda)
                                     : std::nullopt,
                          phi, diam.value, {})) {
    if (!b.applicable) continue;
    table.row().add(b.name).add(b.rounds, 1);
  }
  std::cout << "COBRA b=2 cover-time bounds:\n";
  table.print(std::cout);
  if (graph::is_bipartite(g))
    std::cout << "\n(bipartite: lambda = 1; spectral bounds apply to the "
                 "lazy process with gap computed on (I+P)/2)\n";
  return 0;
}
