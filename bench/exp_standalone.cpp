// Back-compat shim: each historical exp_* binary is this file compiled
// with COBRA_EXP_NAME set, running `cobra run <name>` — same one-shot
// console table and canonical CSV as before, plus the runner flags
// (--scale/--seed/--shard/--resume/...) for free.
#include "runner/cli.hpp"

#ifndef COBRA_EXP_NAME
#error "COBRA_EXP_NAME must name a registered experiment"
#endif

int main(int argc, char** argv) {
  return cobra::runner::standalone_main(COBRA_EXP_NAME, argc - 1, argv + 1);
}
