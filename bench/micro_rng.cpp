// RNG kernel throughput: the simulators draw two random neighbours per
// active vertex per round, so generator speed bounds everything else.
#include <benchmark/benchmark.h>

#include "rng/philox.hpp"
#include "rng/rng.hpp"
#include "rng/stream.hpp"

namespace {

using namespace cobra;

void BM_Xoshiro256ss(benchmark::State& state) {
  rng::Rng rng(42);
  std::uint64_t sink = 0;
  for (auto _ : state) sink += rng.next_u64();
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Xoshiro256ss);

void BM_Philox4x32(benchmark::State& state) {
  rng::PhiloxRng rng(42, 0);
  std::uint64_t sink = 0;
  for (auto _ : state) sink += rng.next();
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Philox4x32);

void BM_BoundedBelow(benchmark::State& state) {
  rng::Rng rng(42);
  const auto bound = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t sink = 0;
  for (auto _ : state) sink += rng.below(bound);
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoundedBelow)->Arg(3)->Arg(1000)->Arg(1 << 20);

void BM_Uniform01(benchmark::State& state) {
  rng::Rng rng(42);
  double sink = 0;
  for (auto _ : state) sink += rng.uniform01();
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Uniform01);

void BM_MakeStream(benchmark::State& state) {
  std::uint64_t id = 0;
  for (auto _ : state) {
    rng::Rng rng = rng::make_stream(7, id++);
    benchmark::DoNotOptimize(rng.next_u64());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MakeStream);

}  // namespace

BENCHMARK_MAIN();
