// E15 — the "with high probability" content of Theorems 1.1/1.2/1.4/1.5.
//
// A w.h.p. bound is a survival statement: P(cover > T_bound(n)) <= n^{-c}.
// Reproduction: for growing n, estimate the exceedance probability of the
// cover time at fixed multiples of the measured median. If the w.h.p. claim
// holds with geometric round tails (which the restart argument guarantees),
// the exceedance at a fixed multiple must DECREASE with n — the defining
// fingerprint of a w.h.p. (rather than merely in-expectation) bound.
// Also demonstrates the paper's restart argument operationally.
//
// Registry unit: one cell per (family, size) point.
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/estimators.hpp"
#include "core/restart.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "runner/registry.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/stats.hpp"
#include "sim/survival.hpp"
#include "util/env.hpp"

namespace {
using namespace cobra;

struct FamilyCase {
  std::string label;
  std::function<graph::Graph(graph::VertexId, rng::Rng&)> make;
  std::vector<graph::VertexId> sizes;
};

const std::vector<FamilyCase>& families() {
  static const std::vector<FamilyCase> kFamilies = {
      {"complete",
       [](graph::VertexId n, rng::Rng&) { return graph::complete(n); },
       {128, 512, 2048}},
      {"random_regular r=4",
       [](graph::VertexId n, rng::Rng& rng) {
         return graph::connected_random_regular(n, 4, rng);
       },
       {128, 512, 2048}},
      {"torus 2D",
       [](graph::VertexId side, rng::Rng&) {
         return graph::torus_power(side, 2);
       },
       {11, 21, 41}},  // sides; n = side^2
  };
  return kFamilies;
}

void run_point(std::size_t family_index, graph::VertexId size,
               runner::CellContext& ctx) {
  const std::uint64_t seed = util::global_seed();
  const auto reps = static_cast<std::uint64_t>(util::scaled(400, 64));
  const FamilyCase& family = families()[family_index];

  rng::Rng grng =
      rng::make_stream(rng::derive_seed(seed, 501), size * 31 + 1);
  const graph::Graph g = family.make(size, grng);
  const auto samples = core::estimate_cobra_cover(
      g, core::ProcessOptions{}, 0, reps,
      rng::derive_seed(seed, 502 + size), 10'000'000);
  const double median = sim::quantile(samples.rounds, 0.5);
  const auto e15 = sim::exceedance_probability(samples.rounds, 1.5 * median);
  const auto e20 = sim::exceedance_probability(samples.rounds, 2.0 * median);
  const double whp1 = sim::whp_round_count(samples.rounds, 0.01);

  // Restart argument: epochs of length 2x median; mean epoch count must
  // be ~1/(1 - P(> epoch)) and total rounds finite for every replicate.
  std::vector<double> epochs(reps);
  sim::parallel_replicates(
      reps, rng::derive_seed(seed, 503 + size),
      [&](std::uint64_t i, rng::Rng& rng) {
        core::CobraProcess p(g);
        p.reset(graph::VertexId{0});
        const auto r = core::run_cover_with_restarts(
            p, rng, static_cast<std::uint64_t>(2.0 * median) + 1);
        epochs[i] = static_cast<double>(r.epochs);
      });

  ctx.row().add(family.label)
      .add(static_cast<std::uint64_t>(g.num_vertices()))
      .add(median, 1)
      .add(e15.probability, 4).add(e15.ci.high, 4)
      .add(e20.probability, 4).add(e20.ci.high, 4)
      .add(whp1, 1)
      .add(sim::mean(epochs), 3);
}

runner::ExperimentDef make_whp() {
  runner::ExperimentDef def;
  def.name = "whp";
  def.description =
      "E15: the w.h.p. shape — exceedance at fixed median multiples must "
      "fall with n; restart argument in action";
  def.tables = {{
      "exp_whp",
      "W.h.p. shape: P(cover > a * median) with Wilson CIs must fall with n "
      "(geometric tails); plus the Section-1 restart argument in action.",
      {"graph", "n", "median", "P(>1.5x med)", "ci high", "P(>2x med)",
       "ci high", "whp@1%", "restart epochs (mean)"}}};
  def.cells = [] {
    std::vector<runner::CellDef> out;
    for (std::size_t f = 0; f < families().size(); ++f) {
      for (const graph::VertexId size : families()[f].sizes) {
        out.push_back({families()[f].label + "/size=" +
                           std::to_string(size),
                       families()[f].label,
                       [f, size](runner::CellContext& ctx) {
                         run_point(f, size, ctx);
                       }});
      }
    }
    return out;
  };
  def.notes = {
      "fixed-multiple exceedance falling with n == the w.h.p. property "
      "(for an in-expectation-only bound it would stay flat).",
      "mean restart epochs ~ 1 confirms the geometric-series argument "
      "that converts the w.h.p. bound into E[cover] = O(bound)."};
  return def;
}

const runner::Registration reg(make_whp);

}  // namespace
