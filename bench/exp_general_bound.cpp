// E1 — Theorem 1.1: for every connected graph, the COBRA (b = 2) cover time
// is O(m + dmax^2 log n), w.h.p.
//
// Reproduction: measure cover times across heterogeneous families and sizes
// and report measured p95 / bound (constant 1). The theorem predicts the
// ratio stays bounded (in fact shrinks or stays flat) as n grows within each
// family; any family where the ratio grew with n would falsify the bound's
// shape.
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/estimators.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main() {
  using namespace cobra;
  const std::uint64_t seed = util::global_seed();
  const std::uint64_t reps = sim::default_replicates(24);

  sim::Experiment exp(
      "exp_general_bound",
      "Theorem 1.1: cover(u) = O(m + dmax^2 ln n) on arbitrary connected "
      "graphs (b = 2). Ratio = measured p95 / bound must stay bounded in n.",
      {"family", "n", "m", "dmax", "mean", "p95", "max", "bound",
       "p95/bound"});

  struct Family {
    std::string name;
    std::function<graph::Graph(graph::VertexId, rng::Rng&)> make;
  };
  const std::vector<Family> families = {
      {"path", [](graph::VertexId n, rng::Rng&) { return graph::path(n); }},
      {"cycle", [](graph::VertexId n, rng::Rng&) { return graph::cycle(n); }},
      {"star", [](graph::VertexId n, rng::Rng&) { return graph::star(n); }},
      {"binary_tree",
       [](graph::VertexId n, rng::Rng&) { return graph::binary_tree(n); }},
      {"lollipop",  // clique ~ sqrt(n) + long tail: mixes both bound terms
       [](graph::VertexId n, rng::Rng&) {
         const auto k = static_cast<graph::VertexId>(std::sqrt(n) * 2);
         return graph::lollipop(std::max<graph::VertexId>(k, 3),
                                n > k ? n - k : 1);
       }},
      {"barbell",
       [](graph::VertexId n, rng::Rng&) {
         const auto k = static_cast<graph::VertexId>(std::sqrt(n) * 2);
         return graph::barbell(std::max<graph::VertexId>(k, 3), 3);
       }},
      {"gnp(2ln n/n)",
       [](graph::VertexId n, rng::Rng& rng) {
         return graph::connected_erdos_renyi(n, 2.0, rng);
       }},
      {"barabasi_albert",
       [](graph::VertexId n, rng::Rng& rng) {
         return graph::barabasi_albert(n, 3, rng);
       }},
  };

  const std::vector<graph::VertexId> sizes = {
      static_cast<graph::VertexId>(util::scaled(256, 64)),
      static_cast<graph::VertexId>(util::scaled(512, 128)),
      static_cast<graph::VertexId>(util::scaled(1024, 256)),
      static_cast<graph::VertexId>(util::scaled(2048, 512))};

  for (const auto& family : families) {
    std::vector<double> ratio_by_size;
    for (const auto n : sizes) {
      rng::Rng grng = rng::make_stream(rng::derive_seed(seed, 1),
                                       n * 131 + 7);
      const graph::Graph g = family.make(n, grng);
      const double bound = core::bound_thm11_general(
          g.num_vertices(), g.num_edges(), g.max_degree());
      const auto samples = core::estimate_cobra_cover(
          g, core::ProcessOptions{}, 0, reps, rng::derive_seed(seed, n),
          static_cast<std::uint64_t>(200.0 * bound) + 1000);
      const auto s = sim::summarize(samples.rounds);
      const double ratio = s.p95 / bound;
      ratio_by_size.push_back(ratio);
      exp.row().add(family.name)
          .add(static_cast<std::uint64_t>(g.num_vertices()))
          .add(g.num_edges())
          .add(static_cast<std::uint64_t>(g.max_degree()))
          .add(s.mean, 1).add(s.p95, 1).add(s.max, 1).add(bound, 0)
          .add(ratio, 4);
      if (samples.timeouts > 0)
        exp.note(family.name + " n=" + std::to_string(n) + ": " +
                 std::to_string(samples.timeouts) + " timeouts!");
    }
    exp.rule();
    // Shape check: ratio at the largest size should not exceed the ratio at
    // the smallest size by more than a factor of ~2 (an O(.) claim).
    const double trend = ratio_by_size.back() / ratio_by_size.front();
    exp.note(family.name + ": ratio trend (largest/smallest n) = " +
             util::format_double(trend, 3) +
             (trend < 2.0 ? "  [consistent with O(m + dmax^2 ln n)]"
                          : "  [WARNING: ratio growing]"));
  }
  exp.finish();
  return 0;
}
