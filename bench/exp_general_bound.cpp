// E1 — Theorem 1.1: for every connected graph, the COBRA (b = 2) cover time
// is O(m + dmax^2 log n), w.h.p.
//
// Reproduction: measure cover times across heterogeneous families and sizes
// and report measured p95 / bound (constant 1). The theorem predicts the
// ratio stays bounded (in fact shrinks or stays flat) as n grows within each
// family; any family where the ratio grew with n would falsify the bound's
// shape.
//
// Registry unit: one cell per (family, size) point — 8 x 4 cells whose
// generator streams were already derived per point, so sharding them
// reproduces the historical archive bit for bit.
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/estimators.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "runner/registry.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace {
using namespace cobra;

struct Family {
  std::string name;
  std::function<graph::Graph(graph::VertexId, rng::Rng&)> make;
};

const std::vector<Family>& families() {
  static const std::vector<Family> kFamilies = {
      {"path", [](graph::VertexId n, rng::Rng&) { return graph::path(n); }},
      {"cycle", [](graph::VertexId n, rng::Rng&) { return graph::cycle(n); }},
      {"star", [](graph::VertexId n, rng::Rng&) { return graph::star(n); }},
      {"binary_tree",
       [](graph::VertexId n, rng::Rng&) { return graph::binary_tree(n); }},
      {"lollipop",  // clique ~ sqrt(n) + long tail: mixes both bound terms
       [](graph::VertexId n, rng::Rng&) {
         const auto k = static_cast<graph::VertexId>(std::sqrt(n) * 2);
         return graph::lollipop(std::max<graph::VertexId>(k, 3),
                                n > k ? n - k : 1);
       }},
      {"barbell",
       [](graph::VertexId n, rng::Rng&) {
         const auto k = static_cast<graph::VertexId>(std::sqrt(n) * 2);
         return graph::barbell(std::max<graph::VertexId>(k, 3), 3);
       }},
      {"gnp(2ln n/n)",
       [](graph::VertexId n, rng::Rng& rng) {
         return graph::connected_erdos_renyi(n, 2.0, rng);
       }},
      {"barabasi_albert",
       [](graph::VertexId n, rng::Rng& rng) {
         return graph::barabasi_albert(n, 3, rng);
       }},
  };
  return kFamilies;
}

std::vector<graph::VertexId> sizes() {
  return {static_cast<graph::VertexId>(util::scaled(256, 64)),
          static_cast<graph::VertexId>(util::scaled(512, 128)),
          static_cast<graph::VertexId>(util::scaled(1024, 256)),
          static_cast<graph::VertexId>(util::scaled(2048, 512))};
}

void run_point(std::size_t family_index, graph::VertexId n,
               runner::CellContext& ctx) {
  const std::uint64_t seed = util::global_seed();
  const std::uint64_t reps = sim::default_replicates(24);
  const Family& family = families()[family_index];

  rng::Rng grng = rng::make_stream(rng::derive_seed(seed, 1), n * 131 + 7);
  const graph::Graph g = family.make(n, grng);
  const double bound = core::bound_thm11_general(
      g.num_vertices(), g.num_edges(), g.max_degree());
  const auto samples = core::estimate_cobra_cover(
      g, core::ProcessOptions{}, 0, reps, rng::derive_seed(seed, n),
      static_cast<std::uint64_t>(200.0 * bound) + 1000);
  const auto s = sim::summarize(samples.rounds);
  const double ratio = s.p95 / bound;
  ctx.row().add(family.name)
      .add(static_cast<std::uint64_t>(g.num_vertices()))
      .add(g.num_edges())
      .add(static_cast<std::uint64_t>(g.max_degree()))
      .add(s.mean, 1).add(s.p95, 1).add(s.max, 1).add(bound, 0)
      .add(ratio, 4);
  if (samples.timeouts > 0)
    ctx.note(family.name + " n=" + std::to_string(n) + ": " +
             std::to_string(samples.timeouts) + " timeouts!");
}

runner::ExperimentDef make_general_bound() {
  runner::ExperimentDef def;
  def.name = "general_bound";
  def.description =
      "E1: Theorem 1.1 cover(u) = O(m + dmax^2 ln n) across heterogeneous "
      "families and sizes";
  def.tables = {{
      "exp_general_bound",
      "Theorem 1.1: cover(u) = O(m + dmax^2 ln n) on arbitrary connected "
      "graphs (b = 2). Ratio = measured p95 / bound must stay bounded in n.",
      {"family", "n", "m", "dmax", "mean", "p95", "max", "bound",
       "p95/bound"}}};
  def.cells = [] {
    std::vector<runner::CellDef> out;
    const auto ns = sizes();
    for (std::size_t f = 0; f < families().size(); ++f) {
      for (const graph::VertexId n : ns) {
        out.push_back({families()[f].name + "/n=" + std::to_string(n),
                       families()[f].name,
                       [f, n](runner::CellContext& ctx) {
                         run_point(f, n, ctx);
                       }});
      }
    }
    return out;
  };
  def.summarize = [](const std::vector<util::CsvTable>& tables) {
    // Shape check per family: the ratio at the largest size should not
    // exceed the ratio at the smallest size by more than ~2 (an O(.)
    // claim). Rows arrive in enumeration order, so first/last per family
    // are the smallest/largest size.
    const std::size_t family_col = tables[0].column("family");
    const auto ratios = tables[0].numeric_column("p95/bound");
    std::vector<std::string> notes;
    for (const Family& family : families()) {
      double first = 0.0, last = 0.0;
      bool seen = false;
      for (std::size_t r = 0; r < tables[0].num_rows(); ++r) {
        if (tables[0].rows[r][family_col] != family.name) continue;
        if (!seen) first = ratios[r];
        last = ratios[r];
        seen = true;
      }
      if (!seen || first <= 0.0) continue;
      const double trend = last / first;
      notes.push_back(family.name +
                      ": ratio trend (largest/smallest n) = " +
                      util::format_double(trend, 3) +
                      (trend < 2.0
                           ? "  [consistent with O(m + dmax^2 ln n)]"
                           : "  [WARNING: ratio growing]"));
    }
    return notes;
  };
  return def;
}

const runner::Registration reg(make_general_bound);

}  // namespace
