// COBRA stepping-engine A/B harness: every benchmark runs with an explicit
// (graph family, engine) pair so reference vs sparse vs dense vs auto can
// be compared like for like. Three views of the hot path:
//
//   BM_CobraStep          — steady-state round cost after the frontier has
//                           saturated (the scale >= 1 bottleneck ROADMAP
//                           flags; items = active vertices processed);
//   BM_CobraStepAtDensity — one round from a controlled frontier density
//                           (per mille of n), isolating the sparse<->dense
//                           crossover on the largest random-regular graph;
//   BM_CobraFullCover     — end-to-end cover runs (what experiments pay).
//
// The committed baseline bench_results/BENCH_step.json is produced by this
// binary (see README.md "Performance" for the regeneration command) and
// guarded by scripts/check_step_bench.py: the dense engine must stay >= 2x
// the reference engine on the largest b = 2 random-regular steady state.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <vector>

#include "core/cobra.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"

namespace {

using namespace cobra;
using namespace cobra::core;

constexpr int kNumGraphs = 6;

// Families x densities: dense frontiers (complete), structured expanders
// (hypercube), low-conductance grids (torus), path-like frontiers (cycle),
// and the paper's b = 2 random-regular workhorse at two scales. Index 5 is
// "the largest micro_cobra scale" the acceptance criterion refers to.
graph::Graph build_graph(int id) {
  rng::Rng rng = rng::make_stream(31337, static_cast<std::uint64_t>(id));
  switch (id) {
    case 0: return graph::complete(1024);
    case 1: return graph::hypercube(12);
    case 2: return graph::torus_power(64, 2);
    case 3: return graph::cycle(4096);
    case 4: return graph::connected_random_regular(16384, 8, rng);
    default: return graph::connected_random_regular(262144, 8, rng);
  }
}

const char* graph_name(int id) {
  switch (id) {
    case 0: return "complete_1024";
    case 1: return "hypercube_4096";
    case 2: return "torus_64x64";
    case 3: return "cycle_4096";
    case 4: return "regular_16384_r8";
    default: return "regular_262144_r8";
  }
}

// Benchmarks of the same graph share one instance (the 262144-vertex
// regular graph takes longer to generate than to benchmark).
const graph::Graph& bench_graph(int id) {
  static std::map<int, graph::Graph>& cache = *new std::map<int, graph::Graph>;
  auto it = cache.find(id);
  if (it == cache.end()) it = cache.emplace(id, build_graph(id)).first;
  return it->second;
}

constexpr Engine kEngines[] = {Engine::kReference, Engine::kSparse,
                               Engine::kDense, Engine::kAuto};

std::string bench_label(int graph_id, int engine_id) {
  return std::string(graph_name(graph_id)) + "/" +
         engine_name(kEngines[engine_id]);
}

ProcessOptions engine_options(int engine_id) {
  ProcessOptions opt;
  opt.engine = kEngines[engine_id];
  return opt;
}

void BM_CobraStep(benchmark::State& state) {
  // Cost of one round once the active set has saturated (|C_t| ~ n(1-1/e^2)
  // on regular graphs) — the dominant cost of large-scale sweeps.
  const int graph_id = static_cast<int>(state.range(0));
  const int engine_id = static_cast<int>(state.range(1));
  const graph::Graph& g = bench_graph(graph_id);
  state.SetLabel(bench_label(graph_id, engine_id));
  CobraProcess p(g, engine_options(engine_id));
  rng::Rng rng = rng::make_stream(2, 0);
  p.reset(graph::VertexId{0});
  p.run_until_cover(rng, 100'000'000);  // saturate the active set
  std::uint64_t pushes = 0;
  for (auto _ : state) {
    pushes += p.num_active();
    p.step(rng);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pushes));
  state.counters["frontier_density"] =
      static_cast<double>(p.num_active()) /
      static_cast<double>(g.num_vertices());
}
BENCHMARK(BM_CobraStep)
    ->ArgsProduct({benchmark::CreateDenseRange(0, kNumGraphs - 1, 1),
                   benchmark::CreateDenseRange(0, 3, 1)})
    ->Unit(benchmark::kMicrosecond);

void BM_CobraStepThreads(benchmark::State& state) {
  // Lane-scaling view of the saturated dense round on the largest graph:
  // results are bit-identical at every lane count
  // (tests/test_kernel_parallel.cpp), so the ratios are pure cost. The
  // threads_1 entry doubles as the single-thread-overhead guard — the
  // lane machinery at kernel_threads = 1 must stay within 2% of the
  // plain BM_CobraStep dense path (scripts/check_step_bench.py --suite
  // step_threads). Scaling entries are only meaningful when the
  // generating machine has at least that many CPUs; the check reads
  // context.num_cpus and skips the speedup assertion otherwise.
  const int threads = static_cast<int>(state.range(0));
  const graph::Graph& g = bench_graph(5);
  state.SetLabel(std::string(graph_name(5)) + "/dense/threads_" +
                 std::to_string(threads));
  ProcessOptions opt;
  opt.engine = Engine::kDense;
  opt.kernel_threads = threads;
  CobraProcess p(g, opt);
  rng::Rng rng = rng::make_stream(2, 0);
  p.reset(graph::VertexId{0});
  p.run_until_cover(rng, 100'000'000);  // saturate the active set
  std::uint64_t pushes = 0;
  for (auto _ : state) {
    pushes += p.num_active();
    p.step(rng);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pushes));
}
BENCHMARK(BM_CobraStepThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_CobraStepAtDensity(benchmark::State& state) {
  // One round from a frontier of fixed density (range(2) is per mille of
  // n), on the largest random-regular graph: the sparse<->dense crossover.
  // range(3) picks the keyed hash — the mix64/philox ratio at 1–10 per
  // mille is the low-density gap the cheap hash exists to close.
  const int engine_id = static_cast<int>(state.range(1));
  const graph::Graph& g = bench_graph(static_cast<int>(state.range(0)));
  const auto per_mille = static_cast<std::uint32_t>(state.range(2));
  const DrawHash hash =
      state.range(3) == 0 ? DrawHash::kMix64 : DrawHash::kPhilox;
  state.SetLabel(bench_label(static_cast<int>(state.range(0)), engine_id) +
                 "/density_" + std::to_string(per_mille) + "permille/" +
                 draw_hash_name(hash));
  const auto k = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(
             (static_cast<std::uint64_t>(g.num_vertices()) * per_mille) /
             1000));
  // A fixed, evenly spread start set: density is what matters, not which
  // vertices carry it.
  std::vector<graph::VertexId> starts;
  starts.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i)
    starts.push_back(static_cast<graph::VertexId>(
        (static_cast<std::uint64_t>(i) * g.num_vertices()) / k));
  ProcessOptions opt = engine_options(engine_id);
  opt.draw_hash = hash;
  CobraProcess p(g, opt);
  rng::Rng rng = rng::make_stream(3, 0);
  std::uint64_t pushes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    p.reset(std::span<const graph::VertexId>(starts.data(), starts.size()));
    // One untimed round so the dense engine measures its steady
    // representation (the bitset word scan), not the one-off
    // vector-to-bitset transition; every engine pays the same frontier
    // drift (~2x the seeded density at low densities).
    p.step(rng);
    state.ResumeTiming();
    pushes += p.num_active();
    p.step(rng);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pushes));
}
BENCHMARK(BM_CobraStepAtDensity)
    ->ArgsProduct({{5},
                   benchmark::CreateDenseRange(0, 3, 1),
                   {1, 10, 100, 500},
                   {0, 1}})  // draw hash: mix64 vs philox
    ->Unit(benchmark::kMicrosecond);

void BM_CobraFullCover(benchmark::State& state) {
  const int graph_id = static_cast<int>(state.range(0));
  const int engine_id = static_cast<int>(state.range(1));
  const graph::Graph& g = bench_graph(graph_id);
  state.SetLabel(bench_label(graph_id, engine_id));
  CobraProcess p(g, engine_options(engine_id));
  std::uint64_t replicate = 0;
  std::uint64_t total_rounds = 0;
  for (auto _ : state) {
    rng::Rng rng = rng::make_stream(1, replicate++);
    p.reset(graph::VertexId{0});
    const auto cover = p.run_until_cover(rng, 100'000'000);
    total_rounds += cover.value();
    benchmark::DoNotOptimize(cover);
  }
  state.counters["rounds/run"] = static_cast<double>(total_rounds) /
                                 static_cast<double>(state.iterations());
}
BENCHMARK(BM_CobraFullCover)
    ->ArgsProduct({benchmark::CreateDenseRange(0, kNumGraphs - 1, 1),
                   {0, 3}})  // reference vs auto: the A/B experiments see
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
