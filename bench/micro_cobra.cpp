// COBRA simulator throughput: full cover runs and steady-state rounds on
// representative topologies.
#include <benchmark/benchmark.h>

#include "core/cobra.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"

namespace {

using namespace cobra;
using namespace cobra::core;

graph::Graph bench_graph(int id) {
  rng::Rng rng = rng::make_stream(31337, static_cast<std::uint64_t>(id));
  switch (id) {
    case 0: return graph::complete(1024);
    case 1: return graph::hypercube(12);
    case 2: return graph::torus_power(64, 2);
    case 3: return graph::connected_random_regular(4096, 8, rng);
    default: return graph::cycle(4096);
  }
}

const char* bench_graph_name(int id) {
  switch (id) {
    case 0: return "complete_1024";
    case 1: return "hypercube_4096";
    case 2: return "torus_64x64";
    case 3: return "regular_4096_r8";
    default: return "cycle_4096";
  }
}

void BM_CobraFullCover(benchmark::State& state) {
  const graph::Graph g = bench_graph(static_cast<int>(state.range(0)));
  state.SetLabel(bench_graph_name(static_cast<int>(state.range(0))));
  CobraProcess p(g);
  std::uint64_t replicate = 0;
  std::uint64_t total_rounds = 0;
  for (auto _ : state) {
    rng::Rng rng = rng::make_stream(1, replicate++);
    p.reset(graph::VertexId{0});
    const auto cover = p.run_until_cover(rng, 100'000'000);
    total_rounds += cover.value();
    benchmark::DoNotOptimize(cover);
  }
  state.counters["rounds/run"] =
      static_cast<double>(total_rounds) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_CobraFullCover)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_CobraSteadyStateRound(benchmark::State& state) {
  // Cost of one round when the active set has saturated (|C_t| ~ n(1-1/e^2)).
  const graph::Graph g = bench_graph(static_cast<int>(state.range(0)));
  state.SetLabel(bench_graph_name(static_cast<int>(state.range(0))));
  CobraProcess p(g);
  rng::Rng rng = rng::make_stream(2, 0);
  p.reset(graph::VertexId{0});
  p.run_until_cover(rng, 100'000'000);  // saturate the active set
  std::uint64_t pushes = 0;
  for (auto _ : state) {
    pushes += p.active().size();
    p.step(rng);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pushes));
}
BENCHMARK(BM_CobraSteadyStateRound)->DenseRange(0, 4);

}  // namespace

BENCHMARK_MAIN();
