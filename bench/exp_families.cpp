// E5/E6/E7 — the per-family cover-time claims the paper quotes:
//   E5 (Dutta et al.): complete graph K_n covered in O(log n) rounds;
//   E6 ([4] + intro): r-regular expanders covered in O(log n) for ANY
//       degree 3 <= r <= n-1 (contrasting Dutta's O(log^2 n));
//   E7 (Dutta / SPAA'16): D-dimensional tori in O~(n^{1/D}) resp.
//       O(D^2 n^{1/D}).
// Each block reports the measured scaling exponent / log-ratio the claim
// predicts.
//
// Registry unit: one cell per (family, size/degree/side) point, spread
// across three tables — one per claim. Expander instances derive their
// generator stream from the degree so every cell is schedule-independent.
#include <cmath>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/estimators.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "runner/registry.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace {
using namespace cobra;

constexpr std::size_t kComplete = 0;
constexpr std::size_t kExpander = 1;
constexpr std::size_t kGrid = 2;

void run_complete(std::uint32_t p, runner::CellContext& ctx) {
  const std::uint64_t seed = util::global_seed();
  const std::uint64_t reps = sim::default_replicates(24);
  const auto n = static_cast<graph::VertexId>(1u << p);
  const graph::Graph g = graph::complete(n);
  const auto samples = core::estimate_cobra_cover(
      g, core::ProcessOptions{}, 0, reps, rng::derive_seed(seed, p), 100000);
  const auto s = sim::summarize(samples.rounds);
  ctx.table(kComplete).row().add(static_cast<std::uint64_t>(n))
      .add(s.mean, 2).add(s.p95, 1)
      .add(s.mean / std::log(static_cast<double>(n)), 3);
}

void run_expander(std::uint32_t r, runner::CellContext& ctx) {
  const std::uint64_t seed = util::global_seed();
  const std::uint64_t reps = sim::default_replicates(24);
  const auto n = static_cast<graph::VertexId>(util::scaled(4096, 256));
  rng::Rng grng = rng::make_stream(rng::derive_seed(seed, 41), r);
  const graph::Graph g = graph::connected_random_regular(n, r, grng);
  const auto samples = core::estimate_cobra_cover(
      g, core::ProcessOptions{}, 0, reps, rng::derive_seed(seed, 50 + r),
      100000);
  const auto s = sim::summarize(samples.rounds);
  ctx.table(kExpander).row().add(static_cast<std::uint64_t>(r))
      .add(static_cast<std::uint64_t>(n))
      .add(s.mean, 2).add(s.p95, 1)
      .add(s.mean / std::log(static_cast<double>(n)), 3);
}

void run_grid(std::uint32_t D, graph::VertexId side,
              runner::CellContext& ctx) {
  const std::uint64_t seed = util::global_seed();
  const std::uint64_t reps = sim::default_replicates(24);
  const graph::Graph g = graph::torus_power(side, D);
  const double n = static_cast<double>(g.num_vertices());
  const auto samples = core::estimate_cobra_cover(
      g, core::ProcessOptions{}, 0, reps,
      rng::derive_seed(seed, 60 + D * 100 + side),
      static_cast<std::uint64_t>(1000.0 * std::pow(n, 1.0 / D)) + 10000);
  const auto s = sim::summarize(samples.rounds);
  const double root = std::pow(n, 1.0 / D);
  ctx.table(kGrid).row().add(static_cast<std::uint64_t>(D))
      .add(static_cast<std::uint64_t>(g.num_vertices()))
      .add(s.mean, 1).add(s.p95, 1).add(root, 1).add(s.mean / root, 3);
}

std::vector<graph::VertexId> grid_sides(std::uint32_t D) {
  // Comparable vertex counts per dimension, odd sides (non-bipartite).
  if (D == 1) return {129, 257, 513, 1025};
  if (D == 2) return {11, 17, 23, 33};
  return {5, 7, 9, 11};
}

runner::ExperimentDef make_families() {
  runner::ExperimentDef def;
  def.name = "families";
  def.description =
      "E5/E6/E7: per-family cover-time claims — complete graphs, "
      "expanders of every degree, D-dimensional tori";
  def.tables = {
      {"exp_families_complete",
       "E5 (Dutta et al.): K_n is covered in O(log n) rounds.",
       {"n", "mean", "p95", "mean/ln n"}},
      {"exp_families_expander",
       "E6 ([4]): random r-regular expanders are covered in O(log n) "
       "rounds for any 3 <= r <= n-1 (not O(log^2 n)).",
       {"r", "n", "mean", "p95", "mean/ln n"}},
      {"exp_families_grid",
       "E7: D-dim tori covered in O~(n^{1/D}) [5,6] / O(D^2 n^{1/D}) [8]; "
       "fitted exponent of cover vs n should be ~1/D.",
       {"D", "n", "mean", "p95", "n^(1/D)", "mean/n^(1/D)"}}};
  def.cells = [] {
    std::vector<runner::CellDef> cells;
    for (std::uint32_t p = 7; p <= 12; ++p) {
      cells.push_back({"complete/n=" + std::to_string(1u << p), "complete",
                       [p](runner::CellContext& ctx) {
                         run_complete(p, ctx);
                       }});
    }
    for (const std::uint32_t r : {3u, 4u, 8u, 16u, 32u, 64u}) {
      cells.push_back({"expander/r=" + std::to_string(r), "expander",
                       [r](runner::CellContext& ctx) {
                         run_expander(r, ctx);
                       }});
    }
    for (const std::uint32_t D : {1u, 2u, 3u}) {
      for (const graph::VertexId side : grid_sides(D)) {
        cells.push_back({"grid/D=" + std::to_string(D) +
                             "/side=" + std::to_string(side),
                         "grid/D=" + std::to_string(D),
                         [D, side](runner::CellContext& ctx) {
                           run_grid(D, side, ctx);
                         }});
      }
    }
    return cells;
  };
  def.summarize = [](const std::vector<util::CsvTable>& tables) {
    std::vector<std::string> notes;
    {
      const auto ns = tables[kComplete].numeric_column("n");
      const auto means = tables[kComplete].numeric_column("mean");
      std::vector<double> lnns;
      for (const double n : ns) lnns.push_back(std::log(n));
      const auto fit = sim::linear_fit(lnns, means);
      notes.push_back("complete: cover vs ln n is linear: slope " +
                      util::format_double(fit.slope, 3) + ", R^2 " +
                      util::format_double(fit.r2, 4) +
                      "  [O(log n) claim: slope is the constant, "
                      "R^2 ~ 1]");
    }
    {
      const auto Ds = tables[kGrid].numeric_column("D");
      const auto ns = tables[kGrid].numeric_column("n");
      const auto means = tables[kGrid].numeric_column("mean");
      for (const std::uint32_t D : {1u, 2u, 3u}) {
        std::vector<double> dns, dmeans;
        for (std::size_t i = 0; i < Ds.size(); ++i) {
          if (static_cast<std::uint32_t>(Ds[i]) != D) continue;
          dns.push_back(ns[i]);
          dmeans.push_back(means[i]);
        }
        if (dns.size() < 2) continue;
        const auto fit = sim::loglog_fit(dns, dmeans);
        notes.push_back("grid D=" + std::to_string(D) +
                        ": fitted exponent " +
                        util::format_double(fit.slope, 3) +
                        " vs predicted " +
                        util::format_double(1.0 / D, 3) + " (R^2 " +
                        util::format_double(fit.r2, 4) + ")");
      }
    }
    return notes;
  };
  def.notes = {
      "expander: the mean/ln n column should be a (roughly) r-independent "
      "constant: the cover time is O(log n) at every degree."};
  return def;
}

const runner::Registration reg(make_families);

}  // namespace
