// E5/E6/E7 — the per-family cover-time claims the paper quotes:
//   E5 (Dutta et al.): complete graph K_n covered in O(log n) rounds;
//   E6 ([4] + intro): r-regular expanders covered in O(log n) for ANY
//       degree 3 <= r <= n-1 (contrasting Dutta's O(log^2 n));
//   E7 (Dutta / SPAA'16): D-dimensional tori in O~(n^{1/D}) resp.
//       O(D^2 n^{1/D}).
// Each block reports the measured scaling exponent / log-ratio the claim
// predicts.
#include <cmath>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/estimators.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main() {
  using namespace cobra;
  const std::uint64_t seed = util::global_seed();
  const std::uint64_t reps = sim::default_replicates(24);

  // ---------- E5: complete graphs --------------------------------------
  {
    sim::Experiment exp(
        "exp_families_complete",
        "E5 (Dutta et al.): K_n is covered in O(log n) rounds.",
        {"n", "mean", "p95", "mean/ln n"});
    std::vector<double> ns, means;
    for (std::uint32_t p = 7; p <= 12; ++p) {
      const auto n = static_cast<graph::VertexId>(1u << p);
      const graph::Graph g = graph::complete(n);
      const auto samples = core::estimate_cobra_cover(
          g, core::ProcessOptions{}, 0, reps, rng::derive_seed(seed, p),
          100000);
      const auto s = sim::summarize(samples.rounds);
      ns.push_back(static_cast<double>(n));
      means.push_back(s.mean);
      exp.row().add(static_cast<std::uint64_t>(n)).add(s.mean, 2)
          .add(s.p95, 1).add(s.mean / std::log(static_cast<double>(n)), 3);
    }
    std::vector<double> lnns;
    for (const double n : ns) lnns.push_back(std::log(n));
    const auto fit = sim::linear_fit(lnns, means);
    exp.note("cover vs ln n is linear: slope " +
             util::format_double(fit.slope, 3) + ", R^2 " +
             util::format_double(fit.r2, 4) +
             "  [O(log n) claim: slope is the constant, R^2 ~ 1]");
    exp.finish();
  }

  // ---------- E6: expanders of every degree ----------------------------
  {
    sim::Experiment exp(
        "exp_families_expander",
        "E6 ([4]): random r-regular expanders are covered in O(log n) "
        "rounds for any 3 <= r <= n-1 (not O(log^2 n)).",
        {"r", "n", "mean", "p95", "mean/ln n"});
    const auto n = static_cast<graph::VertexId>(util::scaled(4096, 256));
    rng::Rng grng = rng::make_stream(rng::derive_seed(seed, 41), 0);
    for (const std::uint32_t r : {3u, 4u, 8u, 16u, 32u, 64u}) {
      const graph::Graph g = graph::connected_random_regular(n, r, grng);
      const auto samples = core::estimate_cobra_cover(
          g, core::ProcessOptions{}, 0, reps, rng::derive_seed(seed, 50 + r),
          100000);
      const auto s = sim::summarize(samples.rounds);
      exp.row().add(static_cast<std::uint64_t>(r))
          .add(static_cast<std::uint64_t>(n))
          .add(s.mean, 2).add(s.p95, 1)
          .add(s.mean / std::log(static_cast<double>(n)), 3);
    }
    exp.note("the mean/ln n column should be a (roughly) r-independent "
             "constant: the cover time is O(log n) at every degree.");
    exp.finish();
  }

  // ---------- E7: D-dimensional tori ------------------------------------
  {
    sim::Experiment exp(
        "exp_families_grid",
        "E7: D-dim tori covered in O~(n^{1/D}) [5,6] / O(D^2 n^{1/D}) [8]; "
        "fitted exponent of cover vs n should be ~1/D.",
        {"D", "n", "mean", "p95", "n^(1/D)", "mean/n^(1/D)"});
    for (const std::uint32_t D : {1u, 2u, 3u}) {
      std::vector<double> ns, means;
      // Comparable vertex counts per dimension, odd sides (non-bipartite).
      std::vector<graph::VertexId> sides;
      if (D == 1) sides = {129, 257, 513, 1025};
      if (D == 2) sides = {11, 17, 23, 33};
      if (D == 3) sides = {5, 7, 9, 11};
      for (const auto side : sides) {
        const graph::Graph g = graph::torus_power(side, D);
        const double n = static_cast<double>(g.num_vertices());
        const auto samples = core::estimate_cobra_cover(
            g, core::ProcessOptions{}, 0, reps,
            rng::derive_seed(seed, 60 + D * 100 + side),
            static_cast<std::uint64_t>(1000.0 * std::pow(n, 1.0 / D)) +
                10000);
        const auto s = sim::summarize(samples.rounds);
        ns.push_back(n);
        means.push_back(s.mean);
        const double root = std::pow(n, 1.0 / D);
        exp.row().add(static_cast<std::uint64_t>(D))
            .add(static_cast<std::uint64_t>(g.num_vertices()))
            .add(s.mean, 1).add(s.p95, 1).add(root, 1)
            .add(s.mean / root, 3);
      }
      const auto fit = sim::loglog_fit(ns, means);
      exp.note("D=" + std::to_string(D) + ": fitted exponent " +
               util::format_double(fit.slope, 3) + " vs predicted " +
               util::format_double(1.0 / D, 3) + " (R^2 " +
               util::format_double(fit.r2, 4) + ")");
      exp.rule();
    }
    exp.finish();
  }
  return 0;
}
