// E2 — Theorem 1.2: on connected r-regular graphs with eigenvalue gap
// 1 - lambda > C sqrt(log n / n), the COBRA (b = 2) cover time is
// O((r/(1-lambda) + r^2) log n).
//
// Reproduction: random r-regular graphs (expanders w.h.p.) plus odd cycles
// and tori (small-gap regulars). For each instance we measure lambda and
// print the three competing predictions:
//    thm1.2 (this paper), PODC'16 ln n/gap^3, SPAA'16 r^4/phi^2 ln^2 n.
// The paper's claims to verify: (i) measured p95 <= O(thm1.2), (ii) thm1.2
// beats PODC'16 whenever 1-lambda = o(1/sqrt(r)), and beats SPAA'16
// throughout (via Cheeger 1-lambda >= phi^2/2).
//
// Registry unit: one cell per regular instance; random-regular cells
// derive their generator stream from the degree.
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/estimators.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "runner/registry.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "spectral/conductance.hpp"
#include "spectral/spectral.hpp"
#include "util/env.hpp"

namespace {
using namespace cobra;

struct Case {
  std::string label;
  std::function<graph::Graph(graph::VertexId n_base, rng::Rng&)> make;
};

std::vector<Case> cases() {
  std::vector<Case> out;
  for (const std::uint32_t r : {3u, 8u, 16u, 32u}) {
    out.push_back({"random_regular r=" + std::to_string(r),
                   [r](graph::VertexId n_base, rng::Rng& rng) {
                     return graph::connected_random_regular(n_base, r, rng);
                   }});
  }
  out.push_back({"odd cycle (tiny gap)",
                 [](graph::VertexId n_base, rng::Rng&) {
                   return graph::cycle(n_base | 1u);
                 }});
  out.push_back({"2D torus (odd side)",
                 [](graph::VertexId n_base, rng::Rng&) {
                   const auto side = static_cast<graph::VertexId>(
                       std::lround(std::sqrt(static_cast<double>(n_base))) |
                       1);
                   return graph::torus_power(side, 2);
                 }});
  return out;
}

void run_case(std::size_t index, runner::CellContext& ctx) {
  const std::uint64_t seed = util::global_seed();
  const std::uint64_t reps = sim::default_replicates(24);
  const auto n_base = static_cast<graph::VertexId>(util::scaled(1024, 128));
  const Case c = cases()[index];

  rng::Rng grng = rng::make_stream(rng::derive_seed(seed, 21), index);
  const graph::Graph g = c.make(n_base, grng);

  const auto spec = spectral::compute_lambda_cached(g, seed);
  const double phi = spectral::estimate_conductance(g, seed);
  const double margin =
      spectral::gap_condition_margin(spec.lambda, g.num_vertices());

  const double b_new = core::bound_thm12_regular(
      g.num_vertices(), g.max_degree(), spec.lambda);
  const double b_podc =
      core::bound_podc16_regular(g.num_vertices(), spec.lambda);
  const double b_spaa = core::bound_spaa16_regular(
      g.num_vertices(), g.max_degree(), phi);

  const auto samples = core::estimate_cobra_cover(
      g, core::ProcessOptions{}, 0, reps, rng::derive_seed(seed, 22),
      static_cast<std::uint64_t>(100.0 * b_new) + 10000);
  const auto s = sim::summarize(samples.rounds);

  const char* winner = (b_new <= b_podc && b_new <= b_spaa) ? "thm1.2"
                       : (b_podc <= b_spaa)                 ? "podc16"
                                                            : "spaa16";
  ctx.row().add(c.label)
      .add(static_cast<std::uint64_t>(g.num_vertices()))
      .add(static_cast<std::uint64_t>(g.max_degree()))
      .add(spec.lambda, 5).add(margin, 2)
      .add(s.mean, 1).add(s.p95, 1)
      .add(b_new, 0).add(b_podc, 0).add(b_spaa, 0)
      .add(s.p95 / b_new, 4).add(winner);
  if (samples.timeouts > 0)
    ctx.note(c.label + ": " + std::to_string(samples.timeouts) +
             " timeouts!");
}

runner::ExperimentDef make_regular_bound() {
  runner::ExperimentDef def;
  def.name = "regular_bound";
  def.description =
      "E2: Theorem 1.2 cover = O((r/gap + r^2) ln n) on regular graphs vs "
      "the PODC'16 and SPAA'16 predecessors";
  def.tables = {{
      "exp_regular_bound",
      "Theorem 1.2: cover = O((r/gap + r^2) ln n) on r-regular graphs; "
      "comparison with PODC'16 (ln n/gap^3) and SPAA'16 (r^4/phi^2 ln^2 n).",
      {"graph", "n", "r", "lambda", "margin", "mean", "p95", "thm1.2",
       "podc16", "spaa16", "p95/thm1.2", "winner"}}};
  def.cells = [] {
    std::vector<runner::CellDef> out;
    const auto all = cases();
    for (std::size_t i = 0; i < all.size(); ++i) {
      out.push_back({all[i].label, "",
                     [i](runner::CellContext& ctx) { run_case(i, ctx); }});
    }
    return out;
  };
  def.notes = {
      "margin = (1-lambda)/sqrt(ln n/n): Theorem 1.2 assumes this "
      "exceeds a constant C; rows with small margins (odd cycle) sit "
      "outside the theorem's regime and are shown for contrast.",
      "expected shape: p95/thm1.2 << 1 everywhere (the theorem's "
      "constants are >> 1). 'winner' = thm1.2 exactly where the paper "
      "claims the improvement: 1-lambda small relative to 1/sqrt(r) "
      "(low-degree expanders r=3, tori, cycles); podc16 remains "
      "smaller on strong expanders with large gap, as expected."};
  return def;
}

const runner::Registration reg(make_regular_bound);

}  // namespace
