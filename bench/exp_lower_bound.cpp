// E10 — the structural lower bound: with branching b = 2 the informed set
// at most doubles per round and information travels one hop per round, so
//   cover(u) >= max(log2 n, Diam(G)).
//
// Reproduction: measured cover times across families, with the ratio
// measured/lower >= 1 always; on K_n (where doubling is the only obstacle)
// the ratio should be a small constant, showing the lower bound is nearly
// achieved.
//
// Registry unit: one cell per graph instance.
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/estimators.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "runner/registry.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "util/env.hpp"

namespace {
using namespace cobra;

struct Case {
  std::string label;
  std::function<graph::Graph(rng::Rng&)> make;
};

const std::vector<Case>& cases() {
  static const std::vector<Case> kCases = {
      {"complete(4096)", [](rng::Rng&) { return graph::complete(4096); }},
      {"complete(256)", [](rng::Rng&) { return graph::complete(256); }},
      {"regular(1024,8)",
       [](rng::Rng& rng) {
         return graph::connected_random_regular(1024, 8, rng);
       }},
      {"hypercube(10)", [](rng::Rng&) { return graph::hypercube(10); }},
      {"torus(33x33)", [](rng::Rng&) { return graph::torus_power(33, 2); }},
      {"cycle(257)", [](rng::Rng&) { return graph::cycle(257); }},
      {"path(257)", [](rng::Rng&) { return graph::path(257); }},
      {"binary_tree(255)",
       [](rng::Rng&) { return graph::binary_tree(255); }},
  };
  return kCases;
}

void run_case(std::size_t index, runner::CellContext& ctx) {
  const std::uint64_t seed = util::global_seed();
  const std::uint64_t reps = sim::default_replicates(24);
  const Case& c = cases()[index];

  rng::Rng grng = rng::make_stream(rng::derive_seed(seed, 98), index);
  const graph::Graph g = c.make(grng);
  const auto diam = graph::diameter_estimate(g);
  const double lower = core::bound_lower(g.num_vertices(), diam.value);
  const auto samples = core::estimate_cobra_cover(
      g, core::ProcessOptions{}, 0, reps, rng::derive_seed(seed, 401),
      static_cast<std::uint64_t>(1e8));
  const auto s = sim::summarize(samples.rounds);
  ctx.row().add(c.label)
      .add(static_cast<std::uint64_t>(g.num_vertices()))
      .add(static_cast<std::uint64_t>(diam.value))
      .add(std::log2(static_cast<double>(g.num_vertices())), 2)
      .add(lower, 1).add(s.min, 0).add(s.mean, 1)
      .add(s.mean / lower, 3);
}

runner::ExperimentDef make_lower_bound() {
  runner::ExperimentDef def;
  def.name = "lower_bound";
  def.description =
      "E10: structural lower bound max(log2 n, Diam) — every measured "
      "cover time must exceed it";
  def.tables = {{
      "exp_lower_bound",
      "Lower bound max(log2 n, Diam): every measured cover time must "
      "exceed it; K_n nearly achieves it (doubling is tight there).",
      {"graph", "n", "diam", "log2 n", "lower", "min", "mean",
       "mean/lower"}}};
  def.cells = [] {
    std::vector<runner::CellDef> out;
    for (std::size_t i = 0; i < cases().size(); ++i) {
      out.push_back({cases()[i].label, "",
                     [i](runner::CellContext& ctx) { run_case(i, ctx); }});
    }
    return out;
  };
  def.notes = {
      "every 'min' column entry must be >= 'lower' (exact, not "
      "statistical); mean/lower ~ 2-3 on K_n shows near-tightness."};
  return def;
}

const runner::Registration reg(make_lower_bound);

}  // namespace
