// E10 — the structural lower bound: with branching b = 2 the informed set
// at most doubles per round and information travels one hop per round, so
//   cover(u) >= max(log2 n, Diam(G)).
//
// Reproduction: measured cover times across families, with the ratio
// measured/lower >= 1 always; on K_n (where doubling is the only obstacle)
// the ratio should be a small constant, showing the lower bound is nearly
// achieved.
#include <cmath>
#include <string>

#include "core/bounds.hpp"
#include "core/estimators.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main() {
  using namespace cobra;
  const std::uint64_t seed = util::global_seed();
  const std::uint64_t reps = sim::default_replicates(24);

  sim::Experiment exp(
      "exp_lower_bound",
      "Lower bound max(log2 n, Diam): every measured cover time must "
      "exceed it; K_n nearly achieves it (doubling is tight there).",
      {"graph", "n", "diam", "log2 n", "lower", "min", "mean",
       "mean/lower"});

  rng::Rng grng = rng::make_stream(rng::derive_seed(seed, 98), 0);
  struct Case {
    std::string label;
    graph::Graph g;
  };
  const Case cases[] = {
      {"complete(4096)", graph::complete(4096)},
      {"complete(256)", graph::complete(256)},
      {"regular(1024,8)", graph::connected_random_regular(1024, 8, grng)},
      {"hypercube(10)", graph::hypercube(10)},
      {"torus(33x33)", graph::torus_power(33, 2)},
      {"cycle(257)", graph::cycle(257)},
      {"path(257)", graph::path(257)},
      {"binary_tree(255)", graph::binary_tree(255)},
  };

  for (const auto& c : cases) {
    const graph::Graph& g = c.g;
    const auto diam = graph::diameter_estimate(g);
    const double lower = core::bound_lower(g.num_vertices(), diam.value);
    const auto samples = core::estimate_cobra_cover(
        g, core::ProcessOptions{}, 0, reps, rng::derive_seed(seed, 401),
        static_cast<std::uint64_t>(1e8));
    const auto s = sim::summarize(samples.rounds);
    exp.row().add(c.label)
        .add(static_cast<std::uint64_t>(g.num_vertices()))
        .add(static_cast<std::uint64_t>(diam.value))
        .add(std::log2(static_cast<double>(g.num_vertices())), 2)
        .add(lower, 1).add(s.min, 0).add(s.mean, 1)
        .add(s.mean / lower, 3);
  }
  exp.note("every 'min' column entry must be >= 'lower' (exact, not "
           "statistical); mean/lower ~ 2-3 on K_n shows near-tightness.");
  exp.finish();
  return 0;
}
