// E14 (design ablation): the two BIPS kernels are identical in law but have
// different cost models — sampling is O(n·b) per round, the probability
// kernel is O(d(A_t) + |N(A_t)|). This bench quantifies the crossover.
#include <benchmark/benchmark.h>

#include "core/bips.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"

namespace {

using namespace cobra;
using namespace cobra::core;

graph::Graph bench_graph(int id) {
  rng::Rng rng = rng::make_stream(31338, static_cast<std::uint64_t>(id));
  switch (id) {
    case 0: return graph::complete(1024);          // dense
    case 1: return graph::torus_power(64, 2);      // sparse, degree 4
    case 2: return graph::connected_random_regular(4096, 8, rng);
    default: return graph::cycle(4096);            // sparse, degree 2
  }
}

const char* bench_graph_name(int id) {
  switch (id) {
    case 0: return "complete_1024";
    case 1: return "torus_64x64";
    case 2: return "regular_4096_r8";
    default: return "cycle_4096";
  }
}

void run_kernel(benchmark::State& state, BipsKernel kernel) {
  const int id = static_cast<int>(state.range(0));
  const graph::Graph g = bench_graph(id);
  state.SetLabel(bench_graph_name(id));
  BipsOptions opt;
  opt.kernel = kernel;
  BipsProcess p(g, 0, opt);
  rng::Rng rng = rng::make_stream(3, 0);
  // Measure full infections (restarting when absorbed) so both the sparse
  // start-up and the saturated phase are represented.
  for (auto _ : state) {
    p.step(rng);
    if (p.fully_infected()) p.reset(0);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_vertices()));
}

void BM_BipsRoundSampling(benchmark::State& state) {
  run_kernel(state, BipsKernel::kSampling);
}
BENCHMARK(BM_BipsRoundSampling)->DenseRange(0, 3);

void BM_BipsRoundProbability(benchmark::State& state) {
  run_kernel(state, BipsKernel::kProbability);
}
BENCHMARK(BM_BipsRoundProbability)->DenseRange(0, 3);

void BM_BipsFullInfection(benchmark::State& state) {
  const int id = static_cast<int>(state.range(0));
  const graph::Graph g = bench_graph(id);
  state.SetLabel(bench_graph_name(id));
  const auto kernel =
      state.range(1) == 0 ? BipsKernel::kSampling : BipsKernel::kProbability;
  BipsOptions opt;
  opt.kernel = kernel;
  BipsProcess p(g, 0, opt);
  std::uint64_t replicate = 0;
  for (auto _ : state) {
    rng::Rng rng = rng::make_stream(4, replicate++);
    p.reset(0);
    benchmark::DoNotOptimize(p.run_until_full(rng, 100'000'000));
  }
}
BENCHMARK(BM_BipsFullInfection)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
