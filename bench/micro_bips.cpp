// BIPS frontier-kernel A/B harness: every benchmark runs with an explicit
// (graph family, engine) pair so reference vs sparse vs dense vs auto can
// be compared like for like — all four are bit-for-bit identical in
// results (tests/test_bips_engines.cpp), so the ratios are pure cost.
// Three views of the hot path:
//
//   BM_BipsRound            — per-round cost along full-infection
//                             trajectories (restarting when absorbed), the
//                             mix experiments actually pay; items = n per
//                             round;
//   BM_BipsFullInfection    — end-to-end infec(source) runs;
//   BM_BipsRoundProbability — E14 kernel ablation: the probability kernel's
//                             O(d(A_t)) scan against the sampling kernel
//                             (engine-independent by design).
//
// The committed baseline bench_results/BENCH_bips.json is produced by this
// binary (see README.md "Performance" for the regeneration command) and
// guarded by scripts/check_step_bench.py --suite bips: the dense engine
// must stay >= 2x the reference engine on the BM_BipsRound trajectory of
// the largest b = 2 random-regular graph (ctest bench_bips_baseline_check
// + the CI bench job).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <string>

#include "core/bips.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"

namespace {

using namespace cobra;
using namespace cobra::core;

constexpr int kNumGraphs = 5;

// Index 4 is "the largest random-regular config" the acceptance criterion
// and the baseline check refer to.
graph::Graph build_graph(int id) {
  rng::Rng rng = rng::make_stream(31338, static_cast<std::uint64_t>(id));
  switch (id) {
    case 0: return graph::complete(1024);          // dense
    case 1: return graph::torus_power(64, 2);      // sparse, degree 4
    case 2: return graph::connected_random_regular(4096, 8, rng);
    case 3: return graph::cycle(4096);             // sparse, degree 2
    default: return graph::connected_random_regular(65536, 8, rng);
  }
}

const char* graph_name(int id) {
  switch (id) {
    case 0: return "complete_1024";
    case 1: return "torus_64x64";
    case 2: return "regular_4096_r8";
    case 3: return "cycle_4096";
    default: return "regular_65536_r8";
  }
}

// Benchmarks of the same graph share one instance (the 65536-vertex
// regular graph takes longer to generate than to benchmark).
const graph::Graph& bench_graph(int id) {
  static std::map<int, graph::Graph>& cache = *new std::map<int, graph::Graph>;
  auto it = cache.find(id);
  if (it == cache.end()) it = cache.emplace(id, build_graph(id)).first;
  return it->second;
}

constexpr Engine kEngines[] = {Engine::kReference, Engine::kSparse,
                               Engine::kDense, Engine::kAuto};

std::string bench_label(int graph_id, int engine_id) {
  return std::string(graph_name(graph_id)) + "/" +
         engine_name(kEngines[engine_id]);
}

BipsOptions engine_options(int engine_id) {
  BipsOptions opt;
  opt.process.engine = kEngines[engine_id];
  return opt;
}

void BM_BipsRound(benchmark::State& state) {
  // Per-round cost along the trajectory every infec(source) estimate pays:
  // growth phase, saturated tail and one absorbing round per restart.
  const int graph_id = static_cast<int>(state.range(0));
  const int engine_id = static_cast<int>(state.range(1));
  const graph::Graph& g = bench_graph(graph_id);
  state.SetLabel(bench_label(graph_id, engine_id));
  BipsProcess p(g, 0, engine_options(engine_id));
  rng::Rng rng = rng::make_stream(3, 0);
  for (auto _ : state) {
    p.step(rng);
    if (p.fully_infected()) p.reset(0);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_vertices()));
}
BENCHMARK(BM_BipsRound)
    ->ArgsProduct({benchmark::CreateDenseRange(0, kNumGraphs - 1, 1),
                   benchmark::CreateDenseRange(0, 3, 1)});

void BM_BipsRoundThreads(benchmark::State& state) {
  // Lane-scaling view of the dense BIPS round on the largest graph,
  // mirroring micro_cobra's BM_CobraStepThreads: bit-identical results
  // at every lane count, threads_1 guards the single-thread overhead,
  // and the scaling entries are gated on the generating machine's CPU
  // count (scripts/check_step_bench.py --suite bips_threads).
  const int threads = static_cast<int>(state.range(0));
  const graph::Graph& g = bench_graph(kNumGraphs - 1);
  state.SetLabel(std::string(graph_name(kNumGraphs - 1)) +
                 "/dense/threads_" + std::to_string(threads));
  BipsOptions opt;
  opt.process.engine = Engine::kDense;
  opt.process.kernel_threads = threads;
  BipsProcess p(g, 0, opt);
  rng::Rng rng = rng::make_stream(3, 0);
  for (auto _ : state) {
    p.step(rng);
    if (p.fully_infected()) p.reset(0);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_vertices()));
}
BENCHMARK(BM_BipsRoundThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_BipsFullInfection(benchmark::State& state) {
  const int graph_id = static_cast<int>(state.range(0));
  const int engine_id = static_cast<int>(state.range(1));
  const graph::Graph& g = bench_graph(graph_id);
  state.SetLabel(bench_label(graph_id, engine_id));
  BipsProcess p(g, 0, engine_options(engine_id));
  std::uint64_t replicate = 0;
  for (auto _ : state) {
    rng::Rng rng = rng::make_stream(4, replicate++);
    p.reset(0);
    benchmark::DoNotOptimize(p.run_until_full(rng, 100'000'000));
  }
}
BENCHMARK(BM_BipsFullInfection)
    ->ArgsProduct({{2, 4}, benchmark::CreateDenseRange(0, 3, 1)})
    ->Unit(benchmark::kMillisecond);

void BM_BipsRoundProbability(benchmark::State& state) {
  // E14 design ablation: the probability kernel's O(d(A_t) + |N(A_t)|)
  // round against the sampling kernel's (see BM_BipsRound for the latter).
  const int graph_id = static_cast<int>(state.range(0));
  const graph::Graph& g = bench_graph(graph_id);
  state.SetLabel(std::string(graph_name(graph_id)) + "/probability");
  BipsOptions opt;
  opt.kernel = BipsKernel::kProbability;
  BipsProcess p(g, 0, opt);
  rng::Rng rng = rng::make_stream(3, 0);
  for (auto _ : state) {
    p.step(rng);
    if (p.fully_infected()) p.reset(0);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_vertices()));
}
BENCHMARK(BM_BipsRoundProbability)->DenseRange(0, kNumGraphs - 1);

}  // namespace

BENCHMARK_MAIN();
