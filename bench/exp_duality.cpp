// E3 — Theorem 1.3 (duality):
//   P̂(Hit(v) > T | C_0 = C) = P(C ∩ A_T = ∅ | A_0 = {v}).
//
// Three levels of verification, as in the tests but at experiment scale:
//   coupled   — shared selection table, time-reversed: indicators must agree
//               on every sample (column 'disagree' must be 0);
//   MC        — independent estimates of both sides with a two-proportion
//               z-score (|z| < 4 is agreement at MC precision);
//   exact     — for n <= 14 instances, the exact subset-DP value of the
//               BIPS side, which both MC columns must straddle.
#include <cmath>
#include <string>

#include "core/bips_exact.hpp"
#include "core/duality.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main() {
  using namespace cobra;
  const std::uint64_t seed = util::global_seed();
  const auto reps = static_cast<std::uint64_t>(util::scaled(4000, 400));

  sim::Experiment exp(
      "exp_duality",
      "Theorem 1.3: P(Hit(v) > T | C0=C) == P(C cap A_T = empty | A0={v}). "
      "'disagree' counts violations of the per-omega coupling (must be 0).",
      {"graph", "T", "replicates", "disagree", "cobra miss", "bips miss",
       "|z|", "exact DP"});

  struct Case {
    std::string label;
    graph::Graph g;
    graph::VertexId v;
    std::vector<graph::VertexId> c_set;
    bool exact;  // n small enough for the subset DP
  };
  rng::Rng grng = rng::make_stream(rng::derive_seed(seed, 31), 0);
  std::vector<Case> cases;
  cases.push_back({"petersen", graph::petersen(), 0, {6, 9}, true});
  cases.push_back({"cycle(11)", graph::cycle(11), 0, {5}, true});
  cases.push_back({"lollipop(6,5)", graph::lollipop(6, 5), 10, {0}, true});
  cases.push_back({"gnp(13)", graph::connected_erdos_renyi(13, 2.5, grng),
                   0, {7, 12}, true});
  cases.push_back({"regular(64,3)",
                   graph::connected_random_regular(64, 3, grng), 0,
                   {11, 35, 59}, false});
  cases.push_back({"torus(6x6)", graph::torus_power(6, 2), 0, {21}, false});

  core::ProcessOptions opt;  // b = 2
  bool all_coupled_ok = true;
  double max_z = 0.0;
  for (const auto& tc : cases) {
    for (const std::uint64_t T : {1ull, 2ull, 4ull, 8ull}) {
      const auto est = core::check_duality(tc.g, tc.v, tc.c_set, T, opt,
                                           reps,
                                           rng::derive_seed(seed, 100 + T));
      const auto k1 = static_cast<std::uint64_t>(
          est.cobra_miss * static_cast<double>(reps) + 0.5);
      const auto k2 = static_cast<std::uint64_t>(
          est.bips_miss * static_cast<double>(reps) + 0.5);
      const double z =
          std::fabs(sim::two_proportion_z(k1, reps, k2, reps));
      max_z = std::max(max_z, z);
      all_coupled_ok &= (est.coupled_disagreements == 0);

      exp.row().add(tc.label).add(T).add(reps)
          .add(est.coupled_disagreements)
          .add(est.cobra_miss, 4).add(est.bips_miss, 4).add(z, 2);
      if (tc.exact) {
        exp.add(core::bips_exact_miss_probability(tc.g, tc.v, tc.c_set, T,
                                                  opt),
                4);
      } else {
        exp.add("-");
      }
    }
    exp.rule();
  }

  exp.note(std::string("coupled identity: ") +
           (all_coupled_ok ? "EXACT on every sampled omega (as proved)"
                           : "VIOLATED — implementation bug"));
  exp.note("max |z| over all cells = " + util::format_double(max_z, 2) +
           " (|z| < 4 at these replicate counts means the two sides are "
           "statistically indistinguishable)");
  exp.finish();
  return 0;
}
