// E3 — Theorem 1.3 (duality):
//   P̂(Hit(v) > T | C_0 = C) = P(C ∩ A_T = ∅ | A_0 = {v}).
//
// Three levels of verification, as in the tests but at experiment scale:
//   coupled   — shared selection table, time-reversed: indicators must agree
//               on every sample (column 'disagree' must be 0);
//   MC        — independent estimates of both sides with a two-proportion
//               z-score (|z| < 4 is agreement at MC precision);
//   exact     — for n <= 14 instances, the exact subset-DP value of the
//               BIPS side, which both MC columns must straddle.
//
// Registry unit: one cell per test instance (its four horizon rows stay
// together); random instances derive their generator stream from the cell
// index.
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/bips_exact.hpp"
#include "core/duality.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "runner/registry.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace {
using namespace cobra;

struct Case {
  std::string label;
  std::function<graph::Graph(rng::Rng&)> make;
  graph::VertexId v;
  std::vector<graph::VertexId> c_set;
  bool exact;  // n small enough for the subset DP
};

const std::vector<Case>& cases() {
  static const std::vector<Case> kCases = {
      {"petersen", [](rng::Rng&) { return graph::petersen(); }, 0, {6, 9},
       true},
      {"cycle(11)", [](rng::Rng&) { return graph::cycle(11); }, 0, {5},
       true},
      {"lollipop(6,5)", [](rng::Rng&) { return graph::lollipop(6, 5); }, 10,
       {0}, true},
      {"gnp(13)",
       [](rng::Rng& rng) {
         return graph::connected_erdos_renyi(13, 2.5, rng);
       },
       0, {7, 12}, true},
      {"regular(64,3)",
       [](rng::Rng& rng) {
         return graph::connected_random_regular(64, 3, rng);
       },
       0, {11, 35, 59}, false},
      {"torus(6x6)", [](rng::Rng&) { return graph::torus_power(6, 2); }, 0,
       {21}, false},
  };
  return kCases;
}

void run_case(std::size_t index, runner::CellContext& ctx) {
  const std::uint64_t seed = util::global_seed();
  const auto reps = static_cast<std::uint64_t>(util::scaled(4000, 400));
  const Case& tc = cases()[index];

  rng::Rng grng = rng::make_stream(rng::derive_seed(seed, 31), index);
  const graph::Graph g = tc.make(grng);

  core::ProcessOptions opt;  // b = 2
  for (const std::uint64_t T : {1ull, 2ull, 4ull, 8ull}) {
    const auto est = core::check_duality(g, tc.v, tc.c_set, T, opt, reps,
                                         rng::derive_seed(seed, 100 + T));
    const auto k1 = static_cast<std::uint64_t>(
        est.cobra_miss * static_cast<double>(reps) + 0.5);
    const auto k2 = static_cast<std::uint64_t>(
        est.bips_miss * static_cast<double>(reps) + 0.5);
    const double z = std::fabs(sim::two_proportion_z(k1, reps, k2, reps));

    ctx.row().add(tc.label).add(T).add(reps)
        .add(est.coupled_disagreements)
        .add(est.cobra_miss, 4).add(est.bips_miss, 4).add(z, 2);
    if (tc.exact) {
      ctx.add(core::bips_exact_miss_probability(g, tc.v, tc.c_set, T, opt),
              4);
    } else {
      ctx.add("-");
    }
    if (est.coupled_disagreements != 0) {
      ctx.note(tc.label + " T=" + std::to_string(T) +
               ": coupling disagreement — implementation bug!");
    }
  }
}

runner::ExperimentDef make_duality() {
  runner::ExperimentDef def;
  def.name = "duality";
  def.description =
      "E3: Theorem 1.3 duality between COBRA hitting and BIPS extinction "
      "(coupled / Monte-Carlo / exact DP)";
  def.tables = {{
      "exp_duality",
      "Theorem 1.3: P(Hit(v) > T | C0=C) == P(C cap A_T = empty | A0={v}). "
      "'disagree' counts violations of the per-omega coupling (must be 0).",
      {"graph", "T", "replicates", "disagree", "cobra miss", "bips miss",
       "|z|", "exact DP"}}};
  def.cells = [] {
    std::vector<runner::CellDef> out;
    for (std::size_t i = 0; i < cases().size(); ++i) {
      out.push_back({cases()[i].label, cases()[i].label,
                     [i](runner::CellContext& ctx) { run_case(i, ctx); }});
    }
    return out;
  };
  def.summarize = [](const std::vector<util::CsvTable>& tables) {
    const auto disagree = tables[0].numeric_column("disagree");
    const auto zs = tables[0].numeric_column("|z|");
    bool all_coupled_ok = true;
    for (const double d : disagree) all_coupled_ok &= (d == 0.0);
    double max_z = 0.0;
    for (const double z : zs) max_z = std::max(max_z, z);
    return std::vector<std::string>{
        std::string("coupled identity: ") +
            (all_coupled_ok ? "EXACT on every sampled omega (as proved)"
                            : "VIOLATED — implementation bug"),
        "max |z| over all cells = " + util::format_double(max_z, 2) +
            " (|z| < 4 at these replicate counts means the two sides are "
            "statistically indistinguishable)"};
  };
  return def;
}

const runner::Registration reg(make_duality);

}  // namespace
