// E8 — Section 6: COBRA/BIPS with branching factor b = 1 + rho.
//
// The paper proves the b = 2 bounds carry over with the round counts
// multiplied by 1/rho^2. Reproduction: sweep rho on three topologies and
// compare measured cover(rho)/cover(1) against the 1/rho^2 schedule. The
// theorem gives an upper-bound shape, so the measured ratio must stay at or
// below ~1/rho^2 (on expanders it tracks closer to 1/rho since one factor
// of rho in the proof is slack for the middle phase).
#include <cmath>
#include <string>

#include "core/estimators.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main() {
  using namespace cobra;
  const std::uint64_t seed = util::global_seed();
  const std::uint64_t reps = sim::default_replicates(24);

  sim::Experiment exp(
      "exp_branching",
      "Section 6: branching b = 1 + rho. Bounds scale by 1/rho^2; measured "
      "cover(rho)/cover(1) must stay below that schedule.",
      {"graph", "rho", "mean", "p95", "ratio vs rho=1", "1/rho^2",
       "ratio/(1/rho^2)"});

  rng::Rng grng = rng::make_stream(rng::derive_seed(seed, 71), 0);
  struct Case {
    std::string label;
    graph::Graph g;
  };
  const Case cases[] = {
      {"complete(256)", graph::complete(256)},
      {"regular(512,4)", graph::connected_random_regular(512, 4, grng)},
      {"odd cycle(129)", graph::cycle(129)},
  };

  const double rhos[] = {1.0, 0.75, 0.5, 0.25, 0.125};
  for (const auto& c : cases) {
    double base_mean = 0.0;
    for (const double rho : rhos) {
      core::ProcessOptions opt;
      opt.branching = core::Branching::one_plus_rho(rho);
      const auto samples = core::estimate_cobra_cover(
          c.g, opt, 0, reps,
          rng::derive_seed(seed, 80 + static_cast<std::uint64_t>(rho * 1000)),
          static_cast<std::uint64_t>(2e7));
      const auto s = sim::summarize(samples.rounds);
      if (rho == 1.0) base_mean = s.mean;
      const double ratio = s.mean / base_mean;
      const double schedule = 1.0 / (rho * rho);
      exp.row().add(c.label).add(rho, 3).add(s.mean, 1).add(s.p95, 1)
          .add(ratio, 3).add(schedule, 2).add(ratio / schedule, 3);
      if (samples.timeouts > 0)
        exp.note(c.label + " rho=" + util::format_double(rho, 3) + ": " +
                 std::to_string(samples.timeouts) + " timeouts!");
    }
    exp.rule();
  }
  exp.note("ratio/(1/rho^2) <= ~1 everywhere confirms the Section 6 "
           "upper-bound shape; values well below 1 show where the 1/rho^2 "
           "schedule is conservative.");
  exp.finish();
  return 0;
}
