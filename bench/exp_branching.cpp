// E8 — Section 6: COBRA/BIPS with branching factor b = 1 + rho.
//
// The paper proves the b = 2 bounds carry over with the round counts
// multiplied by 1/rho^2. Reproduction: sweep rho on three topologies and
// compare measured cover(rho)/cover(1) against the 1/rho^2 schedule. The
// theorem gives an upper-bound shape, so the measured ratio must stay at or
// below ~1/rho^2 (on expanders it tracks closer to 1/rho since one factor
// of rho in the proof is slack for the middle phase).
//
// Registry unit: one cell per topology (its rho sweep shares the rho = 1
// baseline, so it stays together).
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/estimators.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "runner/registry.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace {
using namespace cobra;

struct Case {
  std::string label;
  std::function<graph::Graph(rng::Rng&)> make;
};

const std::vector<Case>& cases() {
  static const std::vector<Case> kCases = {
      {"complete(256)", [](rng::Rng&) { return graph::complete(256); }},
      {"regular(512,4)",
       [](rng::Rng& rng) {
         return graph::connected_random_regular(512, 4, rng);
       }},
      {"odd cycle(129)", [](rng::Rng&) { return graph::cycle(129); }},
  };
  return kCases;
}

void run_case(std::size_t index, runner::CellContext& ctx) {
  const std::uint64_t seed = util::global_seed();
  const std::uint64_t reps = sim::default_replicates(24);
  const Case& c = cases()[index];

  rng::Rng grng = rng::make_stream(rng::derive_seed(seed, 71), index);
  const graph::Graph g = c.make(grng);

  const double rhos[] = {1.0, 0.75, 0.5, 0.25, 0.125};
  double base_mean = 0.0;
  for (const double rho : rhos) {
    core::ProcessOptions opt;
    opt.branching = core::Branching::one_plus_rho(rho);
    const auto samples = core::estimate_cobra_cover(
        g, opt, 0, reps,
        rng::derive_seed(seed, 80 + static_cast<std::uint64_t>(rho * 1000)),
        static_cast<std::uint64_t>(2e7));
    const auto s = sim::summarize(samples.rounds);
    if (rho == 1.0) base_mean = s.mean;
    const double ratio = s.mean / base_mean;
    const double schedule = 1.0 / (rho * rho);
    ctx.row().add(c.label).add(rho, 3).add(s.mean, 1).add(s.p95, 1)
        .add(ratio, 3).add(schedule, 2).add(ratio / schedule, 3);
    if (samples.timeouts > 0)
      ctx.note(c.label + " rho=" + util::format_double(rho, 3) + ": " +
               std::to_string(samples.timeouts) + " timeouts!");
  }
}

runner::ExperimentDef make_branching() {
  runner::ExperimentDef def;
  def.name = "branching";
  def.description =
      "E8: branching b = 1 + rho — measured cover(rho)/cover(1) against "
      "the Section 6 1/rho^2 schedule";
  def.tables = {{
      "exp_branching",
      "Section 6: branching b = 1 + rho. Bounds scale by 1/rho^2; measured "
      "cover(rho)/cover(1) must stay below that schedule.",
      {"graph", "rho", "mean", "p95", "ratio vs rho=1", "1/rho^2",
       "ratio/(1/rho^2)"}}};
  def.cells = [] {
    std::vector<runner::CellDef> out;
    for (std::size_t i = 0; i < cases().size(); ++i) {
      out.push_back({cases()[i].label, cases()[i].label,
                     [i](runner::CellContext& ctx) { run_case(i, ctx); }});
    }
    return out;
  };
  def.notes = {
      "ratio/(1/rho^2) <= ~1 everywhere confirms the Section 6 "
      "upper-bound shape; values well below 1 show where the 1/rho^2 "
      "schedule is conservative."};
  return def;
}

const runner::Registration reg(make_branching);

}  // namespace
