// E17 — what the eigenvalue gap buys: mixing vs covering.
//
// Theorem 1.2's r/(1-lambda) term is a mixing-driven quantity (1/(1-lambda)
// is the walk's relaxation time). This experiment puts the measured COBRA
// cover time next to the EXACT total-variation mixing time of the lazy walk
// and the spectral bound t_rel ln(1/(eps pi_min)), per family. The paper's
// message in numbers: COBRA covers in O(log n) on expanders where the walk
// mixes fast, yet still covers in ~n rounds on cycles where the walk needs
// ~n^2 to mix — covering is cheaper than mixing, which is why the paper's
// direct BIPS analysis beats mixing-based arguments.
#include <cmath>
#include <string>

#include "core/estimators.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "spectral/mixing.hpp"
#include "spectral/spectral.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main() {
  using namespace cobra;
  const std::uint64_t seed = util::global_seed();
  const std::uint64_t reps = sim::default_replicates(24);

  sim::Experiment exp(
      "exp_mixing",
      "Mixing vs covering: exact lazy-walk t_mix(1/4), spectral bound, and "
      "measured COBRA cover time (cover << t_mix on slow-mixing graphs).",
      {"graph", "n", "lambda", "t_rel", "t_mix exact", "t_mix bound",
       "cover mean", "cover/t_mix"});

  rng::Rng grng = rng::make_stream(rng::derive_seed(seed, 801), 0);
  struct Case {
    std::string label;
    graph::Graph g;
  };
  const Case cases[] = {
      {"complete(512)", graph::complete(512)},
      {"regular(512,4)", graph::connected_random_regular(512, 4, grng)},
      {"hypercube(9)", graph::hypercube(9)},
      {"torus(23x23)", graph::torus_power(23, 2)},
      {"cycle(513)", graph::cycle(513)},
      {"barbell(24,1)", graph::barbell(24, 1)},
  };

  for (const auto& c : cases) {
    const graph::Graph& g = c.g;
    // Lazy-walk gap: every eigenvalue mu maps to (1+mu)/2, so
    // lambda_lazy = (1 + mu2)/2 where mu2 is the second-largest.
    const auto spec = spectral::compute_lambda(g, seed);
    // For bipartite graphs lambda = |mu_n| = 1; the lazy chain's lambda is
    // still (1 + mu2)/2 < 1, which compute_lambda does not give directly,
    // so recover mu2 from the lazy mixing itself when lambda ~ 1.
    const double t_mix = static_cast<double>(
        spectral::exact_mixing_time(g, 0, 0.25, 0.5, 1u << 22));
    double lambda_lazy;
    if (spec.lambda < 1.0 - 1e-9) {
      lambda_lazy = (1.0 + spec.lambda) / 2.0;
    } else {
      // mu2 unknown from |.|-lambda; bound t_rel from the measured t_mix
      // (t_rel <= t_mix / ln 2 is the standard reverse inequality).
      lambda_lazy = 1.0 - std::log(2.0) / std::max(1.0, t_mix);
    }
    const double t_rel = spectral::relaxation_time(lambda_lazy);
    const double bound = spectral::mixing_time_bound(g, lambda_lazy, 0.25);

    const auto samples = core::estimate_cobra_cover(
        g, core::ProcessOptions{}, 0, reps, rng::derive_seed(seed, 802),
        static_cast<std::uint64_t>(1e8));
    const auto s = sim::summarize(samples.rounds);

    exp.row().add(c.label)
        .add(static_cast<std::uint64_t>(g.num_vertices()))
        .add(spec.lambda, 4)
        .add(t_rel, 1).add(t_mix, 0).add(bound, 0)
        .add(s.mean, 1)
        .add(s.mean / std::max(1.0, t_mix), 3);
  }

  exp.note("cover/t_mix >> 1 on fast mixers (K_n: covering needs log n "
           "rounds, mixing is instant) but << 1 on slow mixers (cycle: "
           "cover ~ n vs t_mix ~ n^2) — covering does not wait for mixing, "
           "the structural insight behind the paper's direct analysis.");
  exp.finish();
  return 0;
}
