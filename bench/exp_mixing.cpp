// E17 — what the eigenvalue gap buys: mixing vs covering.
//
// Theorem 1.2's r/(1-lambda) term is a mixing-driven quantity (1/(1-lambda)
// is the walk's relaxation time). This experiment puts the measured COBRA
// cover time next to the EXACT total-variation mixing time of the lazy walk
// and the spectral bound t_rel ln(1/(eps pi_min)), per family. The paper's
// message in numbers: COBRA covers in O(log n) on expanders where the walk
// mixes fast, yet still covers in ~n rounds on cycles where the walk needs
// ~n^2 to mix — covering is cheaper than mixing, which is why the paper's
// direct BIPS analysis beats mixing-based arguments.
//
// Registry unit: one cell per graph instance.
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/estimators.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "runner/registry.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "spectral/mixing.hpp"
#include "spectral/spectral.hpp"
#include "util/env.hpp"

namespace {
using namespace cobra;

struct Case {
  std::string label;
  std::function<graph::Graph(rng::Rng&)> make;
};

const std::vector<Case>& cases() {
  static const std::vector<Case> kCases = {
      {"complete(512)", [](rng::Rng&) { return graph::complete(512); }},
      {"regular(512,4)",
       [](rng::Rng& rng) {
         return graph::connected_random_regular(512, 4, rng);
       }},
      {"hypercube(9)", [](rng::Rng&) { return graph::hypercube(9); }},
      {"torus(23x23)", [](rng::Rng&) { return graph::torus_power(23, 2); }},
      {"cycle(513)", [](rng::Rng&) { return graph::cycle(513); }},
      {"barbell(24,1)", [](rng::Rng&) { return graph::barbell(24, 1); }},
  };
  return kCases;
}

void run_case(std::size_t index, runner::CellContext& ctx) {
  const std::uint64_t seed = util::global_seed();
  const std::uint64_t reps = sim::default_replicates(24);
  const Case& c = cases()[index];

  rng::Rng grng = rng::make_stream(rng::derive_seed(seed, 801), index);
  const graph::Graph g = c.make(grng);

  // Lazy-walk gap: every eigenvalue mu maps to (1+mu)/2, so
  // lambda_lazy = (1 + mu2)/2 where mu2 is the second-largest.
  const auto spec = spectral::compute_lambda_cached(g, seed);
  // For bipartite graphs lambda = |mu_n| = 1; the lazy chain's lambda is
  // still (1 + mu2)/2 < 1, which compute_lambda does not give directly,
  // so recover mu2 from the lazy mixing itself when lambda ~ 1.
  const double t_mix = static_cast<double>(
      spectral::exact_mixing_time(g, 0, 0.25, 0.5, 1u << 22));
  double lambda_lazy;
  if (spec.lambda < 1.0 - 1e-9) {
    lambda_lazy = (1.0 + spec.lambda) / 2.0;
  } else {
    // mu2 unknown from |.|-lambda; bound t_rel from the measured t_mix
    // (t_rel <= t_mix / ln 2 is the standard reverse inequality).
    lambda_lazy = 1.0 - std::log(2.0) / std::max(1.0, t_mix);
  }
  const double t_rel = spectral::relaxation_time(lambda_lazy);
  const double bound = spectral::mixing_time_bound(g, lambda_lazy, 0.25);

  const auto samples = core::estimate_cobra_cover(
      g, core::ProcessOptions{}, 0, reps, rng::derive_seed(seed, 802),
      static_cast<std::uint64_t>(1e8));
  const auto s = sim::summarize(samples.rounds);

  ctx.row().add(c.label)
      .add(static_cast<std::uint64_t>(g.num_vertices()))
      .add(spec.lambda, 4)
      .add(t_rel, 1).add(t_mix, 0).add(bound, 0)
      .add(s.mean, 1)
      .add(s.mean / std::max(1.0, t_mix), 3);
}

runner::ExperimentDef make_mixing() {
  runner::ExperimentDef def;
  def.name = "mixing";
  def.description =
      "E17: mixing vs covering — exact lazy-walk t_mix and spectral bound "
      "next to measured COBRA cover";
  def.tables = {{
      "exp_mixing",
      "Mixing vs covering: exact lazy-walk t_mix(1/4), spectral bound, and "
      "measured COBRA cover time (cover << t_mix on slow-mixing graphs).",
      {"graph", "n", "lambda", "t_rel", "t_mix exact", "t_mix bound",
       "cover mean", "cover/t_mix"}}};
  def.cells = [] {
    std::vector<runner::CellDef> out;
    for (std::size_t i = 0; i < cases().size(); ++i) {
      out.push_back({cases()[i].label, "",
                     [i](runner::CellContext& ctx) { run_case(i, ctx); }});
    }
    return out;
  };
  def.notes = {
      "cover/t_mix >> 1 on fast mixers (K_n: covering needs log n "
      "rounds, mixing is instant) but << 1 on slow mixers (cycle: "
      "cover ~ n vs t_mix ~ n^2) — covering does not wait for mixing, "
      "the structural insight behind the paper's direct analysis."};
  return def;
}

const runner::Registration reg(make_mixing);

}  // namespace
