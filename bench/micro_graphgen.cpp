// Graph generator throughput (experiments regenerate graphs per
// configuration, so generation must stay cheap relative to simulation).
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"

namespace {

using namespace cobra;

void BM_GenComplete(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        graph::complete(static_cast<graph::VertexId>(state.range(0))));
}
BENCHMARK(BM_GenComplete)->Arg(256)->Arg(1024);

void BM_GenHypercube(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        graph::hypercube(static_cast<std::uint32_t>(state.range(0))));
}
BENCHMARK(BM_GenHypercube)->Arg(10)->Arg(14);

void BM_GenTorus2D(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::torus_power(
        static_cast<graph::VertexId>(state.range(0)), 2));
}
BENCHMARK(BM_GenTorus2D)->Arg(32)->Arg(128);

void BM_GenGnp(benchmark::State& state) {
  const auto n = static_cast<graph::VertexId>(state.range(0));
  const double p = 10.0 / static_cast<double>(n);  // mean degree 10
  std::uint64_t salt = 0;
  for (auto _ : state) {
    rng::Rng rng = rng::make_stream(5, salt++);
    benchmark::DoNotOptimize(graph::erdos_renyi_gnp(n, p, rng));
  }
}
BENCHMARK(BM_GenGnp)->Arg(1 << 12)->Arg(1 << 15);

void BM_GenRandomRegular(benchmark::State& state) {
  const auto n = static_cast<graph::VertexId>(state.range(0));
  const auto r = static_cast<std::uint32_t>(state.range(1));
  std::uint64_t salt = 0;
  for (auto _ : state) {
    rng::Rng rng = rng::make_stream(6, salt++);
    benchmark::DoNotOptimize(graph::random_regular(n, r, rng));
  }
}
BENCHMARK(BM_GenRandomRegular)
    ->Args({1 << 12, 4})
    ->Args({1 << 12, 16})
    ->Unit(benchmark::kMillisecond);

void BM_GenBarabasiAlbert(benchmark::State& state) {
  const auto n = static_cast<graph::VertexId>(state.range(0));
  std::uint64_t salt = 0;
  for (auto _ : state) {
    rng::Rng rng = rng::make_stream(7, salt++);
    benchmark::DoNotOptimize(graph::barabasi_albert(n, 3, rng));
  }
}
BENCHMARK(BM_GenBarabasiAlbert)->Arg(1 << 12)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
