// Graph generator throughput (experiments regenerate graphs per
// configuration, so generation must stay cheap relative to simulation),
// plus the BM_GraphIo* axis: the same workhorse graph obtained by
// in-process generation vs loading a pre-baked binary .cgr (owned copy
// vs O(header) mmap open vs mmap + full adjacency scan). The committed
// bench_results/BENCH_graph_io.json baseline is guarded by
// scripts/check_step_bench.py --suite graph_io.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "graph/binary_io.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "graph/spec.hpp"
#include "rng/stream.hpp"

namespace {

using namespace cobra;

void BM_GenComplete(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        graph::complete(static_cast<graph::VertexId>(state.range(0))));
}
BENCHMARK(BM_GenComplete)->Arg(256)->Arg(1024);

void BM_GenHypercube(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        graph::hypercube(static_cast<std::uint32_t>(state.range(0))));
}
BENCHMARK(BM_GenHypercube)->Arg(10)->Arg(14);

void BM_GenTorus2D(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::torus_power(
        static_cast<graph::VertexId>(state.range(0)), 2));
}
BENCHMARK(BM_GenTorus2D)->Arg(32)->Arg(128);

void BM_GenGnp(benchmark::State& state) {
  const auto n = static_cast<graph::VertexId>(state.range(0));
  const double p = 10.0 / static_cast<double>(n);  // mean degree 10
  std::uint64_t salt = 0;
  for (auto _ : state) {
    rng::Rng rng = rng::make_stream(5, salt++);
    benchmark::DoNotOptimize(graph::erdos_renyi_gnp(n, p, rng));
  }
}
BENCHMARK(BM_GenGnp)->Arg(1 << 12)->Arg(1 << 15);

void BM_GenRandomRegular(benchmark::State& state) {
  const auto n = static_cast<graph::VertexId>(state.range(0));
  const auto r = static_cast<std::uint32_t>(state.range(1));
  std::uint64_t salt = 0;
  for (auto _ : state) {
    rng::Rng rng = rng::make_stream(6, salt++);
    benchmark::DoNotOptimize(graph::random_regular(n, r, rng));
  }
}
BENCHMARK(BM_GenRandomRegular)
    ->Args({1 << 12, 4})
    ->Args({1 << 12, 16})
    ->Unit(benchmark::kMillisecond);

void BM_GenBarabasiAlbert(benchmark::State& state) {
  const auto n = static_cast<graph::VertexId>(state.range(0));
  std::uint64_t salt = 0;
  for (auto _ : state) {
    rng::Rng rng = rng::make_stream(7, salt++);
    benchmark::DoNotOptimize(graph::barabasi_albert(n, 3, rng));
  }
}
BENCHMARK(BM_GenBarabasiAlbert)->Arg(1 << 12)->Unit(benchmark::kMillisecond);

// --- BM_GraphIo*: generate vs load vs mmap for the workhorse graph -----

constexpr const char* kIoSpec = "regular_262144_r8";

// Bakes the spec to a temp .cgr once; every load/mmap bench reads it.
const std::string& baked_cgr_path() {
  static const std::string path = [] {
    const std::string p = (std::filesystem::temp_directory_path() /
                           "cobra_micro_graph_io.cgr")
                              .string();
    graph::write_cgr_file(graph::build_graph_spec(kIoSpec), p);
    return p;
  }();
  return path;
}

void BM_GraphIoGenerate(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::build_graph_spec(kIoSpec));
  state.SetLabel(std::string(kIoSpec) + "/generate");
}
BENCHMARK(BM_GraphIoGenerate)->Unit(benchmark::kMillisecond);

void BM_GraphIoLoadOwned(benchmark::State& state) {
  const std::string& path = baked_cgr_path();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        graph::load_cgr_file(path, graph::CgrLoadMode::kOwned));
  state.SetLabel(std::string(kIoSpec) + "/load_owned");
}
BENCHMARK(BM_GraphIoLoadOwned)->Unit(benchmark::kMillisecond);

void BM_GraphIoMmapOpen(benchmark::State& state) {
  const std::string& path = baked_cgr_path();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        graph::load_cgr_file(path, graph::CgrLoadMode::kMapped));
  state.SetLabel(std::string(kIoSpec) + "/mmap_open");
}
BENCHMARK(BM_GraphIoMmapOpen)->Unit(benchmark::kMillisecond);

void BM_GraphIoMmapScan(benchmark::State& state) {
  const std::string& path = baked_cgr_path();
  for (auto _ : state) {
    const graph::Graph g =
        graph::load_cgr_file(path, graph::CgrLoadMode::kMapped);
    std::uint64_t sum = 0;
    for (const graph::VertexId v : g.adjacency()) sum += v;
    benchmark::DoNotOptimize(sum);
  }
  state.SetLabel(std::string(kIoSpec) + "/mmap_scan");
}
BENCHMARK(BM_GraphIoMmapScan)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
