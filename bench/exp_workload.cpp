// workload — spec-driven COBRA/BIPS measurements over arbitrary graphs.
//
// Unlike the paper-claim experiments (whose graph families are fixed by
// the claim being reproduced), this experiment takes its graph list from
// COBRA_GRAPHS / --graphs (graph/spec.hpp grammar), so ingested
// real-world graphs run through the exact same estimator path as the
// synthetic families:
//
//   cobra graph ingest roads.txt -o roads.cgr
//   cobra run workload --graphs file:roads.cgr,regular_262144_r8
//
// Every cell derives its seeds from the graph *fingerprint*, not from the
// spec string or the cell index, and labels rows with the graph's
// canonical name (the spec string for synthetic families; the name
// embedded at ingest for file: graphs). A pre-baked `file:` run of a
// synthetic family is therefore byte-identical to the in-memory family —
// the property the sweep supervisor relies on when it rewrites synthetic
// specs to shared mmap'd .cgr files for its workers.
#include <string>
#include <vector>

#include "core/estimators.hpp"
#include "graph/spec.hpp"
#include "rng/stream.hpp"
#include "runner/registry.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "util/assert.hpp"
#include "util/env.hpp"

namespace {
using namespace cobra;

// Demo list for runs without --graphs: one graph per structural regime
// (ring, hypercube, expander, torus, fixed small graph), all small enough
// for CI smoke scales.
constexpr const char* kDefaultGraphs =
    "cycle_512,hypercube_10,regular_4096_r8,torus_17_d2,petersen";

std::vector<std::string> workload_specs() {
  const std::string list = util::graphs();
  auto specs =
      graph::split_graph_specs(list.empty() ? kDefaultGraphs : list);
  COBRA_CHECK_MSG(!specs.empty(),
                  "--graphs/COBRA_GRAPHS is set but holds no specs");
  return specs;
}

void run_workload(const std::string& spec, const std::string& label,
                  runner::CellContext& ctx) {
  const auto g = graph::shared_graph(spec);
  const std::uint64_t reps = sim::default_replicates(16);
  const auto n = static_cast<std::uint64_t>(g->num_vertices());
  // Fingerprint-derived base seed: structure decides the randomness, so
  // file:-vs-synthetic sources of the same graph emit identical rows.
  const std::uint64_t base =
      rng::derive_seed(util::global_seed(), g->fingerprint());
  const std::uint64_t max_rounds = 200 * n + 100000;

  const auto cover = core::estimate_cobra_cover(
      *g, core::ProcessOptions{}, 0, reps, rng::derive_seed(base, 1),
      max_rounds);
  const auto cs = sim::summarize(cover.rounds);
  ctx.row().add(label).add(n).add(g->num_edges()).add("cobra-cover")
      .add(cs.mean, 2).add(cs.p95, 1).add(cover.timeouts);

  const auto infect = core::estimate_bips_infection(
      *g, core::BipsOptions{}, 0, reps, rng::derive_seed(base, 2),
      max_rounds);
  const auto is = sim::summarize(infect.rounds);
  ctx.row().add(label).add(n).add(g->num_edges()).add("bips-infect")
      .add(is.mean, 2).add(is.p95, 1).add(infect.timeouts);
}

runner::ExperimentDef make_workload() {
  runner::ExperimentDef def;
  def.name = "workload";
  def.description =
      "spec-driven COBRA cover / BIPS infection over arbitrary graphs "
      "(--graphs/COBRA_GRAPHS, incl. ingested file:*.cgr graphs)";
  def.uses_graph_specs = true;
  def.tables = {
      {"exp_workload",
       "COBRA cover and BIPS infection times on the session's graph list "
       "(seeds derived from graph fingerprints: identical structure, "
       "identical rows).",
       {"graph", "n", "m", "process", "mean", "p95", "timeouts"}}};
  def.cells = [] {
    std::vector<runner::CellDef> cells;
    for (const std::string& spec : workload_specs()) {
      // graph_spec_label is O(header) for file: specs — enumeration stays
      // cheap — and doubles as the stable journal key.
      const std::string label = graph::graph_spec_label(spec);
      cells.push_back({label, label, [spec, label](
                                         runner::CellContext& ctx) {
                         run_workload(spec, label, ctx);
                       }});
    }
    return cells;
  };
  def.notes = {
      "seeds derive from Graph::fingerprint, so `file:` runs of a "
      "pre-baked family reproduce the in-memory family bit for bit."};
  return def;
}

const runner::Registration reg(make_workload);

}  // namespace
