// E13 — the bipartite remark after Theorem 1.2.
//
// On bipartite graphs lambda = 1, so the spectral bounds are vacuous for
// the plain process; the paper notes the same bounds hold for the LAZY
// process (each selection stays put with probability 1/2). Reproduction:
//   * plain b = 2 COBRA still covers bipartite graphs (covering needs no
//     mixing), at a speed comparable to lazy;
//   * the lazy process has gap 1 - lambda_lazy = (1 - lambda_2)/2 > 0, so
//     Theorem 1.2 applies, and measured lazy cover respects it.
//
// Registry unit: one cell per bipartite instance.
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/estimators.hpp"
#include "graph/generators.hpp"
#include "rng/stream.hpp"
#include "runner/registry.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "spectral/dense.hpp"
#include "spectral/spectral.hpp"
#include "util/env.hpp"

namespace {
using namespace cobra;

struct Case {
  std::string label;
  std::function<graph::Graph()> make;
  std::function<double()> lambda2;  // second-largest walk eigenvalue
};

const std::vector<Case>& cases() {
  static const std::vector<Case> kCases = {
      {"cycle(128)", [] { return graph::cycle(128); },
       [] { return spectral::lambda2_cycle(128); }},
      {"complete_bipartite(64,64)",
       [] { return graph::complete_bipartite(64, 64); },
       [] { return 0.0; }},
      {"hypercube(8)", [] { return graph::hypercube(8); },
       [] { return spectral::lambda2_hypercube(8); }},
      {"torus(16x16) even", [] { return graph::torus_power(16, 2); },
       [] { return spectral::lambda2_torus(16, 2); }},
  };
  return kCases;
}

void run_case(std::size_t index, runner::CellContext& ctx) {
  const std::uint64_t seed = util::global_seed();
  const std::uint64_t reps = sim::default_replicates(24);
  const Case& c = cases()[index];

  const graph::Graph g = c.make();
  const double lambda2 = c.lambda2();

  core::ProcessOptions plain;
  const auto plain_samples = core::estimate_cobra_cover(
      g, plain, 0, reps, rng::derive_seed(seed, 301),
      static_cast<std::uint64_t>(1e8));

  core::ProcessOptions lazy;
  lazy.laziness = 0.5;
  const auto lazy_samples = core::estimate_cobra_cover(
      g, lazy, 0, reps, rng::derive_seed(seed, 302),
      static_cast<std::uint64_t>(1e8));

  const double lambda_lazy = (1.0 + lambda2) / 2.0;
  const double bound = g.is_regular()
                           ? core::bound_thm12_regular(
                                 g.num_vertices(), g.max_degree(),
                                 lambda_lazy)
                           : 0.0;
  const auto sp = sim::summarize(plain_samples.rounds);
  const auto sl = sim::summarize(lazy_samples.rounds);
  ctx.row().add(c.label)
      .add(static_cast<std::uint64_t>(g.num_vertices()))
      .add(static_cast<std::uint64_t>(g.max_degree()))
      .add(lambda2, 4).add((1.0 - lambda2) / 2.0, 4)
      .add(sp.mean, 1).add(sl.mean, 1).add(sl.p95, 1)
      .add(bound, 0).add(bound > 0 ? sl.p95 / bound : 0.0, 4);
}

runner::ExperimentDef make_lazy_bipartite() {
  runner::ExperimentDef def;
  def.name = "lazy_bipartite";
  def.description =
      "E13: bipartite graphs (lambda = 1) — plain vs lazy COBRA and "
      "Theorem 1.2 via the lazy gap";
  def.tables = {{
      "exp_lazy_bipartite",
      "Bipartite graphs (lambda = 1): plain vs lazy COBRA; Theorem 1.2 "
      "applies to the lazy process with gap (1 - lambda_2)/2.",
      {"graph", "n", "r", "lambda2", "lazy gap", "plain mean", "lazy mean",
       "lazy p95", "thm1.2(lazy)", "lazy p95/bound"}}};
  def.cells = [] {
    std::vector<runner::CellDef> out;
    for (std::size_t i = 0; i < cases().size(); ++i) {
      out.push_back({cases()[i].label, "",
                     [i](runner::CellContext& ctx) { run_case(i, ctx); }});
    }
    return out;
  };
  def.notes = {
      "confirms the remark: the plain process covers bipartite graphs "
      "fine (cover needs reachability, not mixing), while the lazy "
      "process restores a positive gap so Theorem 1.2's bound becomes "
      "non-vacuous — and the measured p95 sits far below it."};
  return def;
}

const runner::Registration reg(make_lazy_bipartite);

}  // namespace
