// E13 — the bipartite remark after Theorem 1.2.
//
// On bipartite graphs lambda = 1, so the spectral bounds are vacuous for
// the plain process; the paper notes the same bounds hold for the LAZY
// process (each selection stays put with probability 1/2). Reproduction:
//   * plain b = 2 COBRA still covers bipartite graphs (covering needs no
//     mixing), at a speed comparable to lazy;
//   * the lazy process has gap 1 - lambda_lazy = (1 - lambda_2)/2 > 0, so
//     Theorem 1.2 applies, and measured lazy cover respects it.
#include <cmath>
#include <string>

#include "core/bounds.hpp"
#include "core/estimators.hpp"
#include "graph/generators.hpp"
#include "rng/stream.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "spectral/dense.hpp"
#include "spectral/spectral.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main() {
  using namespace cobra;
  const std::uint64_t seed = util::global_seed();
  const std::uint64_t reps = sim::default_replicates(24);

  sim::Experiment exp(
      "exp_lazy_bipartite",
      "Bipartite graphs (lambda = 1): plain vs lazy COBRA; Theorem 1.2 "
      "applies to the lazy process with gap (1 - lambda_2)/2.",
      {"graph", "n", "r", "lambda2", "lazy gap", "plain mean", "lazy mean",
       "lazy p95", "thm1.2(lazy)", "lazy p95/bound"});

  struct Case {
    std::string label;
    graph::Graph g;
    double lambda2;  // second-largest eigenvalue of the walk matrix
  };
  const Case cases[] = {
      {"cycle(128)", graph::cycle(128), spectral::lambda2_cycle(128)},
      {"complete_bipartite(64,64)", graph::complete_bipartite(64, 64), 0.0},
      {"hypercube(8)", graph::hypercube(8), spectral::lambda2_hypercube(8)},
      {"torus(16x16) even", graph::torus_power(16, 2),
       spectral::lambda2_torus(16, 2)},
  };

  for (const auto& c : cases) {
    const graph::Graph& g = c.g;
    core::ProcessOptions plain;
    const auto plain_samples = core::estimate_cobra_cover(
        g, plain, 0, reps, rng::derive_seed(seed, 301),
        static_cast<std::uint64_t>(1e8));

    core::ProcessOptions lazy;
    lazy.laziness = 0.5;
    const auto lazy_samples = core::estimate_cobra_cover(
        g, lazy, 0, reps, rng::derive_seed(seed, 302),
        static_cast<std::uint64_t>(1e8));

    const double lambda_lazy = (1.0 + c.lambda2) / 2.0;
    const double bound = g.is_regular()
                             ? core::bound_thm12_regular(
                                   g.num_vertices(), g.max_degree(),
                                   lambda_lazy)
                             : 0.0;
    const auto sp = sim::summarize(plain_samples.rounds);
    const auto sl = sim::summarize(lazy_samples.rounds);
    exp.row().add(c.label)
        .add(static_cast<std::uint64_t>(g.num_vertices()))
        .add(static_cast<std::uint64_t>(g.max_degree()))
        .add(c.lambda2, 4).add((1.0 - c.lambda2) / 2.0, 4)
        .add(sp.mean, 1).add(sl.mean, 1).add(sl.p95, 1)
        .add(bound, 0).add(bound > 0 ? sl.p95 / bound : 0.0, 4);
  }

  exp.note("confirms the remark: the plain process covers bipartite graphs "
           "fine (cover needs reachability, not mixing), while the lazy "
           "process restores a positive gap so Theorem 1.2's bound becomes "
           "non-vacuous — and the measured p95 sits far below it.");
  exp.finish();
  return 0;
}
