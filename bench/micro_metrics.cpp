// Telemetry-overhead harness: the steady-state COBRA round on the
// largest b = 2 random-regular graph (the BM_CobraStep workhorse),
// re-measured under each metrics mode — off, summary, rounds — and on
// the two fast engines.
//
// The committed baseline bench_results/BENCH_metrics.json is produced by
// this binary (see scripts/check_step_bench.py for the regeneration
// command) and guarded by `check_step_bench.py --suite metrics`: the
// off-mode dense step must stay within --max-overhead (2%) of the
// BM_CobraStep dense baseline in BENCH_step.json — i.e. compiled-in
// instrumentation behind a null check must be free when telemetry is
// off. The summary/rounds entries document what enabling collection
// actually costs (informational, not gated).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "core/cobra.hpp"
#include "core/metrics.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "util/env.hpp"
#include "util/metrics.hpp"

namespace {

using namespace cobra;
using namespace cobra::core;

// The same 262144-vertex r = 8 graph (and seed) as micro_cobra's largest
// scale, so the off-mode entries are directly comparable to
// BENCH_step.json's BM_CobraStep numbers.
const graph::Graph& bench_graph() {
  static const graph::Graph& g = *new graph::Graph([] {
    rng::Rng rng = rng::make_stream(31337, 5);
    return graph::connected_random_regular(262144, 8, rng);
  }());
  return g;
}

constexpr const char* kModes[] = {"off", "summary", "rounds"};
constexpr Engine kEngines[] = {Engine::kSparse, Engine::kDense};

void BM_MetricsStep(benchmark::State& state) {
  const auto* mode = kModes[state.range(0)];
  const Engine engine = kEngines[state.range(1)];
  const graph::Graph& g = bench_graph();
  state.SetLabel("regular_262144_r8/" + std::string(engine_name(engine)) +
                 "/" + mode);

  // The mode must be set before the process is built: the kernel attaches
  // to the thread's session metrics block at construction.
  util::clear_env_overrides();
  util::set_metrics_override(mode);
  ProcessOptions opt;
  opt.engine = engine;
  CobraProcess p(g, opt);
  rng::Rng rng = rng::make_stream(2, 0);
  p.reset(graph::VertexId{0});
  p.run_until_cover(rng, 100'000'000);  // saturate the active set
  std::uint64_t pushes = 0;
  for (auto _ : state) {
    pushes += p.num_active();
    p.step(rng);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pushes));
  // Reset the session blocks so trajectories don't accumulate across
  // benchmark repetitions, and leave the process-wide mode as found.
  drain_cell_metrics();
  util::clear_env_overrides();
}
BENCHMARK(BM_MetricsStep)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 2, 1), {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_MetricsRegistryAdd(benchmark::State& state) {
  // The registry's own hot path: one resolved-slot counter bump. This is
  // what a cold site pays once metrics_collecting() said yes.
  auto& reg = util::MetricsRegistry::instance();
  const util::MetricId id = reg.counter("bench.registry_add");
  std::uint64_t* slots = reg.local_slots();
  for (auto _ : state) {
    slots[id] += 1;
    benchmark::DoNotOptimize(slots[id]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  reg.drain(true);
}
BENCHMARK(BM_MetricsRegistryAdd);

void BM_MetricsDrainAndSerialize(benchmark::State& state) {
  // The per-cell boundary cost: drain the registry and serialize the
  // snapshot to its canonical JSON (what the runner's sidecar append
  // pays, once per cell).
  auto& reg = util::MetricsRegistry::instance();
  const util::MetricId c = reg.counter("bench.drain_counter");
  const util::MetricId gauge = reg.gauge("bench.drain_gauge");
  const util::MetricId h = reg.histogram("bench.drain_hist");
  for (auto _ : state) {
    state.PauseTiming();
    for (std::uint64_t i = 0; i < 64; ++i) {
      reg.add(c, i);
      reg.gauge_max(gauge, i);
      reg.observe(h, i * i);
    }
    state.ResumeTiming();
    const util::MetricsSnapshot snap = reg.drain(true);
    const std::string json = util::snapshot_to_json(snap);
    benchmark::DoNotOptimize(json);
  }
}
BENCHMARK(BM_MetricsDrainAndSerialize)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
