// E16 — the shape of a COBRA covering run.
//
// The paper's phase decomposition (Sections 4-5, for the dual BIPS) has a
// visible primal counterpart: the particle set saturates in the first
// O(log n) rounds, the bulk of vertices is visited while |C_t| = Theta(n),
// and the final stragglers take a coupon-collector-like tail. This
// experiment quantifies the three phases per family (rounds to 50%/90%/100%
// visited, peak |C_t|, tail share of the total time) and archives the full
// averaged curves for plotting.
//
// Registry unit: one cell per graph family; the per-round curves of the
// first replicate go to the secondary exp_cover_profile_curves table.
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/trace.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "runner/registry.hpp"
#include "sim/experiment.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/stats.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace {
using namespace cobra;

struct Case {
  std::string label;
  std::function<graph::Graph(rng::Rng&)> make;
};

const std::vector<Case>& cases() {
  static const std::vector<Case> kCases = {
      {"complete(1024)", [](rng::Rng&) { return graph::complete(1024); }},
      {"regular(1024,4)",
       [](rng::Rng& rng) {
         return graph::connected_random_regular(1024, 4, rng);
       }},
      {"hypercube(10)", [](rng::Rng&) { return graph::hypercube(10); }},
      {"torus(33x33)", [](rng::Rng&) { return graph::torus_power(33, 2); }},
      {"cycle(513)", [](rng::Rng&) { return graph::cycle(513); }},
      {"star(512)", [](rng::Rng&) { return graph::star(512); }},
  };
  return kCases;
}

void run_case(std::size_t index, runner::CellContext& ctx) {
  const std::uint64_t seed = util::global_seed();
  const auto reps = sim::default_replicates(24);
  const Case& c = cases()[index];

  rng::Rng grng = rng::make_stream(rng::derive_seed(seed, 601), index);
  const graph::Graph g = c.make(grng);
  const auto n = g.num_vertices();

  std::vector<double> t50(reps), t90(reps), t100(reps), peak(reps),
      tail(reps);
  std::vector<core::CobraTrace> first_trace(1);
  sim::parallel_replicates(
      reps, rng::derive_seed(seed, 602), [&](std::uint64_t i,
                                             rng::Rng& rng) {
        const auto trace = core::run_cobra_trace(
            g, core::ProcessOptions{}, 0, 100'000'000, rng);
        const auto profile = core::summarize_trace(trace, n);
        t50[i] = static_cast<double>(profile.to_half);
        t90[i] = static_cast<double>(profile.to_ninety);
        t100[i] = static_cast<double>(profile.to_cover);
        peak[i] = static_cast<double>(profile.peak_active);
        tail[i] = profile.tail_fraction;
        if (i == 0) first_trace[0] = trace;
      });

  ctx.row().add(c.label).add(static_cast<std::uint64_t>(n))
      .add(sim::mean(t50), 1).add(sim::mean(t90), 1)
      .add(sim::mean(t100), 1)
      .add(sim::mean(peak), 0)
      .add(sim::mean(peak) / static_cast<double>(n), 3)
      .add(sim::mean(tail), 3);

  ctx.table(1);
  for (const auto& r : first_trace[0].rounds) {
    ctx.row().add(c.label).add(r.round)
        .add(static_cast<std::uint64_t>(r.active))
        .add(static_cast<std::uint64_t>(r.visited));
  }
}

runner::ExperimentDef make_cover_profile() {
  runner::ExperimentDef def;
  def.name = "cover_profile";
  def.description =
      "E16: phase structure of COBRA covering runs — saturation, bulk, "
      "straggler tail (plus per-round curves)";
  def.tables = {
      {"exp_cover_profile",
       "Phase structure of COBRA covering runs (primal mirror of the "
       "paper's Sections 4-5 phases): saturation, bulk, straggler tail.",
       {"graph", "n", "t(50%)", "t(90%)", "t(100%)", "peak |C_t|",
        "peak/n", "tail share"}},
      {"exp_cover_profile_curves",
       "First-replicate per-round trajectories (active/visited counts).",
       {"graph", "round", "active", "visited"}}};
  def.cells = [] {
    std::vector<runner::CellDef> out;
    for (std::size_t i = 0; i < cases().size(); ++i) {
      out.push_back({cases()[i].label, "",
                     [i](runner::CellContext& ctx) { run_case(i, ctx); }});
    }
    return out;
  };
  def.notes = {
      "peak/n ~ 1 - e^{-2} ~ 0.86 on K_n and dense expanders "
      "(branching-two saturation); lower on geometric families where "
      "the frontier is boundary-limited.",
      "tail share: fraction of the run spent on the last 10% of "
      "vertices — the coupon-collector phase the paper's third stage "
      "bounds via Lemma 4.3.",
      "first-replicate curves -> bench_results/exp_cover_profile_"
      "curves.csv"};
  return def;
}

const runner::Registration reg(make_cover_profile);

}  // namespace
