// E16 — the shape of a COBRA covering run.
//
// The paper's phase decomposition (Sections 4-5, for the dual BIPS) has a
// visible primal counterpart: the particle set saturates in the first
// O(log n) rounds, the bulk of vertices is visited while |C_t| = Theta(n),
// and the final stragglers take a coupon-collector-like tail. This
// experiment quantifies the three phases per family (rounds to 50%/90%/100%
// visited, peak |C_t|, tail share of the total time) and archives the full
// averaged curves for plotting.
#include <string>
#include <vector>

#include "core/trace.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "sim/experiment.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/stats.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main() {
  using namespace cobra;
  const std::uint64_t seed = util::global_seed();
  const auto reps = sim::default_replicates(24);

  sim::Experiment exp(
      "exp_cover_profile",
      "Phase structure of COBRA covering runs (primal mirror of the "
      "paper's Sections 4-5 phases): saturation, bulk, straggler tail.",
      {"graph", "n", "t(50%)", "t(90%)", "t(100%)", "peak |C_t|",
       "peak/n", "tail share"});

  rng::Rng grng = rng::make_stream(rng::derive_seed(seed, 601), 0);
  struct Case {
    std::string label;
    graph::Graph g;
  };
  const Case cases[] = {
      {"complete(1024)", graph::complete(1024)},
      {"regular(1024,4)", graph::connected_random_regular(1024, 4, grng)},
      {"hypercube(10)", graph::hypercube(10)},
      {"torus(33x33)", graph::torus_power(33, 2)},
      {"cycle(513)", graph::cycle(513)},
      {"star(512)", graph::star(512)},
  };

  util::CsvWriter curves("bench_results/exp_cover_profile_curves.csv",
                         {"graph", "round", "active", "visited"});
  for (const auto& c : cases) {
    const graph::Graph& g = c.g;
    const auto n = g.num_vertices();
    std::vector<double> t50(reps), t90(reps), t100(reps), peak(reps),
        tail(reps);
    std::vector<core::CobraTrace> first_trace(1);
    sim::parallel_replicates(
        reps, rng::derive_seed(seed, 602), [&](std::uint64_t i,
                                               rng::Rng& rng) {
          const auto trace = core::run_cobra_trace(
              g, core::ProcessOptions{}, 0, 100'000'000, rng);
          const auto profile = core::summarize_trace(trace, n);
          t50[i] = static_cast<double>(profile.to_half);
          t90[i] = static_cast<double>(profile.to_ninety);
          t100[i] = static_cast<double>(profile.to_cover);
          peak[i] = static_cast<double>(profile.peak_active);
          tail[i] = profile.tail_fraction;
          if (i == 0) first_trace[0] = trace;
        });
    for (const auto& r : first_trace[0].rounds)
      curves.row().add(c.label).add(r.round)
          .add(static_cast<std::uint64_t>(r.active))
          .add(static_cast<std::uint64_t>(r.visited));

    exp.row().add(c.label).add(static_cast<std::uint64_t>(n))
        .add(sim::mean(t50), 1).add(sim::mean(t90), 1)
        .add(sim::mean(t100), 1)
        .add(sim::mean(peak), 0)
        .add(sim::mean(peak) / static_cast<double>(n), 3)
        .add(sim::mean(tail), 3);
  }
  curves.close();

  exp.note("peak/n ~ 1 - e^{-2} ~ 0.86 on K_n and dense expanders "
           "(branching-two saturation); lower on geometric families where "
           "the frontier is boundary-limited.");
  exp.note("tail share: fraction of the run spent on the last 10% of "
           "vertices — the coupon-collector phase the paper's third stage "
           "bounds via Lemma 4.3.");
  exp.note("first-replicate curves -> bench_results/exp_cover_profile_"
           "curves.csv");
  exp.finish();
  return 0;
}
