// E4 — the paper's flagship example (Section 1): the hypercube Q_d,
// n = 2^d, r = log2 n, with conductance and eigenvalue gap Theta(1/log n).
//
// Successive bounds on the COBRA cover time:
//   SPAA'16  (r^4/phi^2) ln^2 n      = O(log^8 n)
//   PODC'16  ln n / gap^3            = O(log^4 n)
//   THIS PAPER  (r/gap + r^2) ln n   = O(log^3 n)
// and the paper closes noting no reason it should exceed Theta(log n).
//
// The hypercube is bipartite (lambda = 1), so the spectral bounds apply to
// the lazy process (gap exactly 1/d); we measure both lazy and plain b = 2
// COBRA. The fitted exponent of cover vs d answers the conjecture's shape:
// the paper predicts ~1 (Theta(log n)), far below the bound's 3.
//
// Registry unit: one cell per dimension d.
#include <cmath>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/estimators.hpp"
#include "graph/generators.hpp"
#include "rng/stream.hpp"
#include "runner/registry.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "spectral/spectral.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace {
using namespace cobra;

void run_dimension(std::uint32_t d, runner::CellContext& ctx) {
  const std::uint64_t seed = util::global_seed();
  const std::uint64_t reps = sim::default_replicates(24);

  const graph::Graph g = graph::hypercube(d);
  const std::uint64_t n = g.num_vertices();

  core::ProcessOptions plain;
  const auto plain_samples = core::estimate_cobra_cover(
      g, plain, 0, reps, rng::derive_seed(seed, d), 1'000'000);

  core::ProcessOptions lazy;
  lazy.laziness = 0.5;
  const auto lazy_samples = core::estimate_cobra_cover(
      g, lazy, 0, reps, rng::derive_seed(seed, 100 + d), 1'000'000);

  const double lambda_lazy = spectral::lambda_lazy_hypercube(d);  // 1-1/d
  const double phi = 1.0 / static_cast<double>(d);  // Harper's cut
  const double b_new = core::bound_thm12_regular(n, d, lambda_lazy);
  const double b_podc = core::bound_podc16_regular(n, lambda_lazy);
  const double b_spaa = core::bound_spaa16_regular(n, d, phi);

  const auto sp = sim::summarize(plain_samples.rounds);
  const auto sl = sim::summarize(lazy_samples.rounds);

  ctx.row().add(static_cast<std::uint64_t>(d)).add(n)
      .add(sp.mean, 1).add(sl.mean, 1).add(sl.p95, 1)
      .add(b_new, 0).add(b_podc, 0).add(b_spaa, 0)
      .add(sl.p95 / b_new, 5);
}

runner::ExperimentDef make_hypercube() {
  runner::ExperimentDef def;
  def.name = "hypercube";
  def.description =
      "E4: hypercube Q_d — measured COBRA cover vs the O(log^8), O(log^4), "
      "O(log^3) bound hierarchy";
  def.tables = {{
      "exp_hypercube",
      "Hypercube Q_d: measured COBRA cover vs the O(log^8), O(log^4), "
      "O(log^3) bound hierarchy (lazy process; gap = 1/d, phi = 1/d).",
      {"d", "n", "plain mean", "lazy mean", "lazy p95", "thm1.2~log^3",
       "podc16~log^4", "spaa16~log^8", "lazy p95/thm1.2"}}};
  def.cells = [] {
    const auto d_max = static_cast<std::uint32_t>(util::scaled(13, 9));
    std::vector<runner::CellDef> cells;
    for (std::uint32_t d = 4; d <= d_max; ++d) {
      cells.push_back({"d=" + std::to_string(d), "",
                       [d](runner::CellContext& ctx) {
                         run_dimension(d, ctx);
                       }});
    }
    return cells;
  };
  def.summarize = [](const std::vector<util::CsvTable>& tables) {
    const auto ds = tables[0].numeric_column("d");
    const auto lazy_means = tables[0].numeric_column("lazy mean");
    const auto plain_means = tables[0].numeric_column("plain mean");
    const auto fit_lazy = sim::loglog_fit(ds, lazy_means);
    const auto fit_plain = sim::loglog_fit(ds, plain_means);
    return std::vector<std::string>{
        "fitted exponent of cover vs d (lazy): " +
            util::format_double(fit_lazy.slope, 3) +
            " (R^2 = " + util::format_double(fit_lazy.r2, 4) + ")",
        "fitted exponent of cover vs d (plain): " +
            util::format_double(fit_plain.slope, 3) +
            " (R^2 = " + util::format_double(fit_plain.r2, 4) + ")"};
  };
  def.notes = {
      "paper: bound guarantees exponent <= 3; conjecture (open "
      "problem) is exponent 1 — the measured exponent near 1 supports "
      "the conjecture."};
  return def;
}

const runner::Registration reg(make_hypercube);

}  // namespace
