// E12 — the paper's motivation: COBRA vs the alternatives.
//
//   b = 1 (simple random walk): Omega(n log n) cover on every graph —
//     "low transmission rate but does not satisfy fast propagation";
//   k independent walks: faster, but no coalescing discipline;
//   push gossip: fast, but every informed vertex transmits every round
//     forever (unbounded cumulative traffic);
//   COBRA b = 2: near-gossip speed with <= 2 transmissions per active
//     vertex per round and information allowed to die out locally.
//
// Registry unit: one cell per graph; the cell emits one row per protocol.
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "baselines/flooding.hpp"
#include "baselines/multi_walk.hpp"
#include "baselines/pull_gossip.hpp"
#include "baselines/push_gossip.hpp"
#include "baselines/random_walk.hpp"
#include "core/cobra.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "runner/registry.hpp"
#include "sim/experiment.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/stats.hpp"
#include "util/env.hpp"

namespace {
using namespace cobra;

struct Case {
  std::string label;
  std::function<graph::Graph(rng::Rng&)> make;
};

const std::vector<Case>& cases() {
  static const std::vector<Case> kCases = {
      {"complete(256)", [](rng::Rng&) { return graph::complete(256); }},
      {"regular(512,4)",
       [](rng::Rng& rng) {
         return graph::connected_random_regular(512, 4, rng);
       }},
      {"torus(16x16)", [](rng::Rng&) { return graph::torus_power(16, 2); }},
      {"cycle(256)", [](rng::Rng&) { return graph::cycle(256); }},
  };
  return kCases;
}

void run_case(std::size_t index, runner::CellContext& ctx) {
  const std::uint64_t seed = util::global_seed();
  const std::uint64_t reps = sim::default_replicates(16);
  const Case& c = cases()[index];

  rng::Rng grng = rng::make_stream(rng::derive_seed(seed, 97), index);
  const graph::Graph g = c.make(grng);
  const auto k = static_cast<std::uint32_t>(std::ceil(
      std::log2(static_cast<double>(g.num_vertices()))));

  // One destination sampler per cell, shared by every protocol, replicate
  // and thread (the alias tables are immutable after construction).
  baselines::BaselineOptions bopt;
  bopt.sampler = std::make_shared<const core::NeighborSampler>(g, 0.0);

  // COBRA b = 2.
  {
    std::vector<double> rounds(reps), msgs(reps);
    sim::parallel_replicates(
        reps, rng::derive_seed(seed, 201), [&](std::uint64_t i,
                                               rng::Rng& rng) {
          core::CobraProcess p(g);
          p.reset(graph::VertexId{0});
          rounds[i] = static_cast<double>(
              p.run_until_cover(rng, 1ull << 32).value());
          msgs[i] = static_cast<double>(p.transmissions());
        });
    const auto s = sim::summarize(rounds);
    ctx.row().add(c.label).add("COBRA b=2").add(s.mean, 1).add(s.p95, 1)
        .add(sim::mean(msgs), 0);
  }
  // Simple random walk.
  {
    std::vector<double> rounds(reps);
    sim::parallel_replicates(
        reps, rng::derive_seed(seed, 202), [&](std::uint64_t i,
                                               rng::Rng& rng) {
          rounds[i] = static_cast<double>(
              baselines::random_walk_cover(g, 0, rng, 1ull << 34, bopt)
                  .steps);
        });
    const auto s = sim::summarize(rounds);
    ctx.row().add("").add("random walk b=1").add(s.mean, 1).add(s.p95, 1)
        .add(s.mean, 0);
  }
  // k independent walks.
  {
    std::vector<double> rounds(reps), msgs(reps);
    sim::parallel_replicates(
        reps, rng::derive_seed(seed, 203), [&](std::uint64_t i,
                                               rng::Rng& rng) {
          const auto r =
              baselines::multi_walk_cover(g, 0, k, rng, 1ull << 32, bopt);
          rounds[i] = static_cast<double>(r.rounds);
          msgs[i] = static_cast<double>(r.transmissions);
        });
    const auto s = sim::summarize(rounds);
    ctx.row().add("").add(std::to_string(k) + " indep walks")
        .add(s.mean, 1).add(s.p95, 1).add(sim::mean(msgs), 0);
  }
  // Push gossip.
  {
    std::vector<double> rounds(reps), msgs(reps);
    sim::parallel_replicates(
        reps, rng::derive_seed(seed, 204), [&](std::uint64_t i,
                                               rng::Rng& rng) {
          const auto r =
              baselines::push_gossip_cover(g, 0, rng, 1ull << 26, bopt);
          rounds[i] = static_cast<double>(r.rounds);
          msgs[i] = static_cast<double>(r.transmissions);
        });
    const auto s = sim::summarize(rounds);
    ctx.row().add("").add("push gossip").add(s.mean, 1).add(s.p95, 1)
        .add(sim::mean(msgs), 0);
  }
  // Pull and push-pull gossip.
  {
    std::vector<double> rounds(reps), msgs(reps);
    sim::parallel_replicates(
        reps, rng::derive_seed(seed, 205), [&](std::uint64_t i,
                                               rng::Rng& rng) {
          const auto r =
              baselines::pull_gossip_cover(g, 0, rng, 1ull << 26, bopt);
          rounds[i] = static_cast<double>(r.rounds);
          msgs[i] = static_cast<double>(r.transmissions);
        });
    const auto s = sim::summarize(rounds);
    ctx.row().add("").add("pull gossip").add(s.mean, 1).add(s.p95, 1)
        .add(sim::mean(msgs), 0);
  }
  {
    std::vector<double> rounds(reps), msgs(reps);
    sim::parallel_replicates(
        reps, rng::derive_seed(seed, 206), [&](std::uint64_t i,
                                               rng::Rng& rng) {
          const auto r =
              baselines::push_pull_gossip_cover(g, 0, rng, 1ull << 26, bopt);
          rounds[i] = static_cast<double>(r.rounds);
          msgs[i] = static_cast<double>(r.transmissions);
        });
    const auto s = sim::summarize(rounds);
    ctx.row().add("").add("push-pull gossip").add(s.mean, 1).add(s.p95, 1)
        .add(sim::mean(msgs), 0);
  }
  // Deterministic flooding (round-optimal broadcast; maximal traffic).
  {
    const auto r = baselines::flooding_cover(g, 0, 1ull << 26, bopt);
    ctx.row().add("").add("flooding (det.)")
        .add(static_cast<double>(r.rounds), 1)
        .add(static_cast<double>(r.rounds), 1)
        .add(static_cast<double>(r.transmissions), 0);
  }
}

runner::ExperimentDef make_baselines() {
  runner::ExperimentDef def;
  def.name = "baselines";
  def.description =
      "E12: COBRA b=2 vs random walk, k independent walks, gossip "
      "variants and flooding — rounds and transmissions";
  def.tables = {{
      "exp_baselines",
      "E12: COBRA b=2 vs random walk (b=1) vs k independent walks vs push "
      "gossip — rounds to cover and total transmissions.",
      {"graph", "protocol", "rounds mean", "rounds p95", "msgs mean"}}};
  def.cells = [] {
    std::vector<runner::CellDef> out;
    for (std::size_t i = 0; i < cases().size(); ++i) {
      out.push_back({cases()[i].label, cases()[i].label,
                     [i](runner::CellContext& ctx) { run_case(i, ctx); }});
    }
    return out;
  };
  def.notes = {
      "expected shape: COBRA within a small factor of push gossip in "
      "rounds, >= 10x faster than the single walk everywhere, with "
      "bounded per-vertex per-round traffic."};
  return def;
}

const runner::Registration reg(make_baselines);

}  // namespace
