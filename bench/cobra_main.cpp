// The unified experiment runner: list/run/merge over every registered
// bench/exp_* experiment. See `cobra --help` or README.md.
#include "runner/cli.hpp"

int main(int argc, char** argv) {
  return cobra::runner::cli_main(argc - 1, argv + 1);
}
