// E9 — Theorems 1.4/1.5 and the growth machinery behind them:
//   * Lemma 4.1: E(|A_{t+1}| | A_t) >= |A_t| (1 + (1-lambda^2)(1-|A_t|/n))
//     — verified round-by-round on the averaged growth curve;
//   * Corollary 5.2: |C_t| >= |A_{t-1}| (1-lambda)/2 while |A_{t-1}| <= n/2
//     — verified on per-round candidate sets;
//   * infection time infec(v) obeys the same (1)/(2) bounds as cover(u)
//     (that is exactly how Theorems 1.1/1.2 are proved).
//
// Registry unit: one cell per graph instance.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/bips.hpp"
#include "core/bounds.hpp"
#include "core/estimators.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "runner/registry.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "spectral/spectral.hpp"
#include "util/env.hpp"

namespace {
using namespace cobra;

struct Case {
  std::string label;
  std::function<graph::Graph(rng::Rng&)> make;
  bool regular_bound;
};

const std::vector<Case>& cases() {
  static const std::vector<Case> kCases = {
      {"complete(512)", [](rng::Rng&) { return graph::complete(512); },
       true},
      {"regular(1024,8)",
       [](rng::Rng& rng) {
         return graph::connected_random_regular(1024, 8, rng);
       },
       true},
      {"torus(33x33)", [](rng::Rng&) { return graph::torus_power(33, 2); },
       true},
      {"lollipop(24,200)",
       [](rng::Rng&) { return graph::lollipop(24, 200); }, false},
      {"barabasi_albert(512)",
       [](rng::Rng& rng) { return graph::barabasi_albert(512, 3, rng); },
       false},
  };
  return kCases;
}

void run_case(std::size_t index, runner::CellContext& ctx) {
  const std::uint64_t seed = util::global_seed();
  const std::uint64_t reps = sim::default_replicates(48);
  const Case& c = cases()[index];

  rng::Rng grng = rng::make_stream(rng::derive_seed(seed, 91), index);
  const graph::Graph g = c.make(grng);
  const double n = static_cast<double>(g.num_vertices());
  const auto spec = spectral::compute_lambda_cached(g, seed);

  // Infection-time samples vs the applicable theorem bound.
  const double bound =
      c.regular_bound && spec.lambda < 1.0
          ? core::bound_thm12_regular(g.num_vertices(), g.max_degree(),
                                      spec.lambda)
          : core::bound_thm11_general(g.num_vertices(), g.num_edges(),
                                      g.max_degree());
  const auto samples = core::estimate_bips_infection(
      g, core::BipsOptions{}, 0, reps, rng::derive_seed(seed, 92),
      static_cast<std::uint64_t>(100.0 * bound) + 10000);
  const auto s = sim::summarize(samples.rounds);

  // Lemma 4.1 on the averaged curve: observed growth factor vs predicted
  // (valid for regular graphs; reported for all as a descriptive stat).
  const std::uint64_t horizon =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(s.p95) + 2, 4000);
  const auto curve = core::average_bips_growth(
      g, core::BipsOptions{}, 0, horizon, reps,
      rng::derive_seed(seed, 93));
  double min_growth_ratio = 1e9;
  for (std::size_t t = 0; t + 1 < curve.size(); ++t) {
    if (curve[t] >= 0.75 * n) break;  // lemma bites below saturation
    const double predicted =
        curve[t] *
        (1.0 + (1.0 - spec.lambda * spec.lambda) * (1.0 - curve[t] / n));
    if (predicted > 0)
      min_growth_ratio = std::min(min_growth_ratio,
                                  curve[t + 1] / predicted);
  }

  // Corollary 5.2 on one trajectory: |C_t| vs |A_{t-1}| (1-lambda)/2.
  double min_cand_ratio = 1e9;
  {
    auto rng = rng::make_stream(rng::derive_seed(seed, 94), 0);
    core::BipsProcess p(g, 0);
    for (std::uint64_t t = 0; t < horizon; ++t) {
      if (p.infected_count() > g.num_vertices() / 2) break;
      const double floor_size = static_cast<double>(p.infected_count()) *
                                (1.0 - spec.lambda) / 2.0;
      const double cand = static_cast<double>(p.candidate_set().size());
      if (floor_size > 0)
        min_cand_ratio = std::min(min_cand_ratio, cand / floor_size);
      p.step(rng);
      if (p.fully_infected()) break;
    }
  }

  ctx.row().add(c.label)
      .add(static_cast<std::uint64_t>(g.num_vertices()))
      .add(spec.lambda, 4)
      .add(s.mean, 1).add(s.p95, 1).add(bound, 0).add(s.p95 / bound, 4)
      .add(min_growth_ratio, 3).add(min_cand_ratio, 2);
  if (samples.timeouts > 0)
    ctx.note(c.label + ": " + std::to_string(samples.timeouts) +
             " timeouts!");
}

runner::ExperimentDef make_bips_growth() {
  runner::ExperimentDef def;
  def.name = "bips_growth";
  def.description =
      "E9: BIPS infection times vs Theorems 1.4/1.5 plus the Lemma 4.1 "
      "growth and Corollary 5.2 candidate-set guarantees";
  def.tables = {{
      "exp_bips_growth",
      "Theorems 1.4/1.5 + Lemma 4.1 + Corollary 5.2: BIPS infection times "
      "against the paper bounds, and the per-round growth/candidate-set "
      "guarantees.",
      {"graph", "n", "lambda", "infec mean", "infec p95", "bound",
       "p95/bound", "min growth ratio", "min cand ratio"}}};
  def.cells = [] {
    std::vector<runner::CellDef> out;
    for (std::size_t i = 0; i < cases().size(); ++i) {
      out.push_back({cases()[i].label, "",
                     [i](runner::CellContext& ctx) { run_case(i, ctx); }});
    }
    return out;
  };
  def.notes = {
      "min growth ratio >= ~1 verifies Lemma 4.1 (sampling noise "
      "allows slight dips below 1 late in the curve; the lemma is "
      "proved for regular graphs).",
      "min cand ratio >= 1 verifies Corollary 5.2: the candidate set "
      "is never smaller than |A|(1-lambda)/2 below half infection."};
  return def;
}

const runner::Registration reg(make_bips_growth);

}  // namespace
