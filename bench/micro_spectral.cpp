// Spectral solver cost: the regular-graph experiments compute lambda per
// instance; Lanczos must stay negligible next to the Monte-Carlo budget.
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "spectral/dense.hpp"
#include "spectral/lanczos.hpp"
#include "spectral/power.hpp"

namespace {

using namespace cobra;

void BM_DenseJacobi(benchmark::State& state) {
  rng::Rng grng = rng::make_stream(8, 0);
  const graph::Graph g = graph::connected_random_regular(
      static_cast<graph::VertexId>(state.range(0)), 4, grng);
  for (auto _ : state)
    benchmark::DoNotOptimize(spectral::walk_spectrum_dense(g));
}
BENCHMARK(BM_DenseJacobi)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_Lanczos(benchmark::State& state) {
  rng::Rng grng = rng::make_stream(9, 0);
  const graph::Graph g = graph::connected_random_regular(
      static_cast<graph::VertexId>(state.range(0)), 8, grng);
  std::uint64_t salt = 0;
  for (auto _ : state) {
    rng::Rng rng = rng::make_stream(10, salt++);
    benchmark::DoNotOptimize(spectral::lanczos_extremes(g, rng));
  }
}
BENCHMARK(BM_Lanczos)->Arg(1 << 10)->Arg(1 << 13)
    ->Unit(benchmark::kMillisecond);

void BM_PowerIteration(benchmark::State& state) {
  rng::Rng grng = rng::make_stream(11, 0);
  const graph::Graph g = graph::connected_random_regular(
      static_cast<graph::VertexId>(state.range(0)), 8, grng);
  std::uint64_t salt = 0;
  for (auto _ : state) {
    rng::Rng rng = rng::make_stream(12, salt++);
    benchmark::DoNotOptimize(spectral::power_lambda(g, rng, 2000, 1e-8));
  }
}
BENCHMARK(BM_PowerIteration)->Arg(1 << 10)->Arg(1 << 13)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
