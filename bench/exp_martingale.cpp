// E11 — Section 3: the serialised-BIPS martingale.
//
// Verifies, at experiment scale, the three ingredients of the Theorem 1.4
// proof:
//   (14): d(A_t) = d(v) + sum Y_l   — exact identity on every trace;
//   (18): E(Y_l | past) >= 1/2      — minimum conditional drift per step;
//   Lemma 2.1: the normalised sums S_q = sum Z_l, Z_l = (1/2 - Y_l)/dmax,
//     obey P(S_q > delta sqrt(q)) < e^{-delta^2/2} empirically.
#include <algorithm>
#include <cmath>
#include <string>

#include "core/azuma.hpp"
#include "core/martingale.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main() {
  using namespace cobra;
  const std::uint64_t seed = util::global_seed();
  const auto runs = static_cast<std::uint64_t>(util::scaled(400, 50));

  sim::Experiment exp(
      "exp_martingale",
      "Section 3 serialisation: identity (14) exact, drift (18) >= 1/2, and "
      "the Azuma tail of Lemma 2.1 vs the empirical tail of S_q.",
      {"graph", "runs", "max |(14) violation|", "min drift", "mean Y",
       "q", "delta", "empirical tail", "azuma bound"});

  rng::Rng grng = rng::make_stream(rng::derive_seed(seed, 95), 0);
  struct Case {
    std::string label;
    graph::Graph g;
  };
  const Case cases[] = {
      {"cycle(128)", graph::cycle(128)},
      {"lollipop(16,64)", graph::lollipop(16, 64)},
      {"regular(256,4)", graph::connected_random_regular(256, 4, grng)},
      {"barabasi_albert(256)", graph::barabasi_albert(256, 2, grng)},
  };

  for (const auto& c : cases) {
    const double dmax = static_cast<double>(c.g.max_degree());
    double worst_identity = 0.0;
    double min_drift = 1e18;
    std::vector<double> all_y;
    // Tail statistics of S_q at a fixed prefix length q.
    const std::size_t q = 64;
    const double delta = 1.0;
    std::uint64_t tail_hits = 0, tail_total = 0;

    for (std::uint64_t run = 0; run < runs; ++run) {
      auto rng = rng::make_stream(rng::derive_seed(seed, 96), run);
      const auto trace = core::run_bips_serialized(
          c.g, 0, core::ProcessOptions{}, 1u << 22, rng);
      worst_identity = std::max(
          worst_identity, core::trace_identity_violation(c.g, 0, trace));
      double s_q = 0.0;
      for (std::size_t l = 0; l < trace.steps.size(); ++l) {
        const auto& step = trace.steps[l];
        min_drift = std::min(min_drift, step.conditional_mean);
        all_y.push_back(step.y);
        if (l < q) s_q += (0.5 - step.y) / dmax;  // Z_l
      }
      if (trace.steps.size() >= q) {
        ++tail_total;
        if (s_q > delta * std::sqrt(static_cast<double>(q))) ++tail_hits;
      }
    }

    const double empirical_tail =
        tail_total > 0
            ? static_cast<double>(tail_hits) / static_cast<double>(tail_total)
            : 0.0;
    exp.row().add(c.label).add(runs)
        .add(worst_identity, 6)
        .add(min_drift, 3)
        .add(sim::mean(all_y), 3)
        .add(static_cast<std::uint64_t>(q)).add(delta, 2)
        .add(empirical_tail, 4)
        .add(core::azuma_tail_lemma21(delta), 4);
  }

  exp.note("(14) violation must be exactly 0; min drift must be >= 0.5 "
           "(paper eq. (18)); empirical tail must not exceed the Azuma "
           "bound (the bound is loose because the real drift is positive, "
           "not just non-negative).");
  exp.finish();
  return 0;
}
