// E11 — Section 3: the serialised-BIPS martingale.
//
// Verifies, at experiment scale, the three ingredients of the Theorem 1.4
// proof:
//   (14): d(A_t) = d(v) + sum Y_l   — exact identity on every trace;
//   (18): E(Y_l | past) >= 1/2      — minimum conditional drift per step;
//   Lemma 2.1: the normalised sums S_q = sum Z_l, Z_l = (1/2 - Y_l)/dmax,
//     obey P(S_q > delta sqrt(q)) < e^{-delta^2/2} empirically.
//
// Registry unit: one cell per graph instance.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/azuma.hpp"
#include "core/martingale.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "runner/registry.hpp"
#include "sim/stats.hpp"
#include "util/env.hpp"

namespace {
using namespace cobra;

struct Case {
  std::string label;
  std::function<graph::Graph(rng::Rng&)> make;
};

const std::vector<Case>& cases() {
  static const std::vector<Case> kCases = {
      {"cycle(128)", [](rng::Rng&) { return graph::cycle(128); }},
      {"lollipop(16,64)", [](rng::Rng&) { return graph::lollipop(16, 64); }},
      {"regular(256,4)",
       [](rng::Rng& rng) {
         return graph::connected_random_regular(256, 4, rng);
       }},
      {"barabasi_albert(256)",
       [](rng::Rng& rng) { return graph::barabasi_albert(256, 2, rng); }},
  };
  return kCases;
}

void run_case(std::size_t index, runner::CellContext& ctx) {
  const std::uint64_t seed = util::global_seed();
  const auto runs = static_cast<std::uint64_t>(util::scaled(400, 50));
  const Case& c = cases()[index];

  rng::Rng grng = rng::make_stream(rng::derive_seed(seed, 95), index);
  const graph::Graph g = c.make(grng);

  const double dmax = static_cast<double>(g.max_degree());
  double worst_identity = 0.0;
  double min_drift = 1e18;
  std::vector<double> all_y;
  // Tail statistics of S_q at a fixed prefix length q.
  const std::size_t q = 64;
  const double delta = 1.0;
  std::uint64_t tail_hits = 0, tail_total = 0;

  for (std::uint64_t run = 0; run < runs; ++run) {
    auto rng = rng::make_stream(rng::derive_seed(seed, 96), run);
    const auto trace = core::run_bips_serialized(
        g, 0, core::ProcessOptions{}, 1u << 22, rng);
    worst_identity = std::max(
        worst_identity, core::trace_identity_violation(g, 0, trace));
    double s_q = 0.0;
    for (std::size_t l = 0; l < trace.steps.size(); ++l) {
      const auto& step = trace.steps[l];
      min_drift = std::min(min_drift, step.conditional_mean);
      all_y.push_back(step.y);
      if (l < q) s_q += (0.5 - step.y) / dmax;  // Z_l
    }
    if (trace.steps.size() >= q) {
      ++tail_total;
      if (s_q > delta * std::sqrt(static_cast<double>(q))) ++tail_hits;
    }
  }

  const double empirical_tail =
      tail_total > 0
          ? static_cast<double>(tail_hits) / static_cast<double>(tail_total)
          : 0.0;
  ctx.row().add(c.label).add(runs)
      .add(worst_identity, 6)
      .add(min_drift, 3)
      .add(sim::mean(all_y), 3)
      .add(static_cast<std::uint64_t>(q)).add(delta, 2)
      .add(empirical_tail, 4)
      .add(core::azuma_tail_lemma21(delta), 4);
}

runner::ExperimentDef make_martingale() {
  runner::ExperimentDef def;
  def.name = "martingale";
  def.description =
      "E11: Section 3 serialised-BIPS martingale — identity (14), drift "
      "(18), Azuma tail of Lemma 2.1";
  def.tables = {{
      "exp_martingale",
      "Section 3 serialisation: identity (14) exact, drift (18) >= 1/2, and "
      "the Azuma tail of Lemma 2.1 vs the empirical tail of S_q.",
      {"graph", "runs", "max |(14) violation|", "min drift", "mean Y",
       "q", "delta", "empirical tail", "azuma bound"}}};
  def.cells = [] {
    std::vector<runner::CellDef> out;
    for (std::size_t i = 0; i < cases().size(); ++i) {
      out.push_back({cases()[i].label, "",
                     [i](runner::CellContext& ctx) { run_case(i, ctx); }});
    }
    return out;
  };
  def.notes = {
      "(14) violation must be exactly 0; min drift must be >= 0.5 "
      "(paper eq. (18)); empirical tail must not exceed the Azuma "
      "bound (the bound is loose because the real drift is positive, "
      "not just non-negative)."};
  return def;
}

const runner::Registration reg(make_martingale);

}  // namespace
