#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over every first-party translation
# unit in the compile database. The CI `lint` job gates on this script;
# locally it needs clang-tidy on PATH and an exported compile database:
#
#   cmake -B build -S .          # CMAKE_EXPORT_COMPILE_COMMANDS is ON
#   scripts/run_tidy.sh [build]
#
# Exits 0 when clang-tidy is unavailable (containers without the LLVM
# frontend), so local ctest runs never fail on missing tooling — CI
# installs the real thing.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$root/build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_tidy: clang-tidy not found on PATH; skipping (CI runs it)" >&2
  exit 0
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_tidy: $build_dir/compile_commands.json not found." >&2
  echo "run_tidy: configure first: cmake -B $build_dir -S $root" >&2
  exit 2
fi

# First-party TUs only: third-party sources fetched into the build tree
# (GTest, benchmark) are not ours to lint.
mapfile -t files < <(python3 - "$build_dir/compile_commands.json" <<'EOF'
import json, os, sys
with open(sys.argv[1]) as db:
    entries = json.load(db)
for entry in entries:
    f = os.path.abspath(os.path.join(entry.get("directory", "."),
                                     entry["file"]))
    if "/_deps/" in f or "/CMakeFiles/" in f:
        continue
    print(f)
EOF
)

if [ "${#files[@]}" -eq 0 ]; then
  echo "run_tidy: no first-party files in the compile database" >&2
  exit 2
fi

echo "run_tidy: ${#files[@]} translation units"
jobs="$(nproc 2>/dev/null || echo 2)"

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "$build_dir" -quiet -j "$jobs" "${files[@]}"
else
  status=0
  for f in "${files[@]}"; do
    clang-tidy -p "$build_dir" --quiet "$f" || status=1
  done
  exit "$status"
fi
