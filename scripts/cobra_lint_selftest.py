#!/usr/bin/env python3
"""Self-test for cobra_lint.py against tests/lint_fixtures/tree.

Runs the linter over the fixture tree (one seeded violation per rule plus
one allowlisted suppression) and asserts the exact rule-id and file:line
of every expected finding — and that nothing else fires. Registered in
ctest as cobra_lint_selftest; a lint engine that silently stops seeing a
rule fails here, not in a real PR.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(ROOT, "scripts", "cobra_lint.py")
FIXTURES = os.path.join(ROOT, "tests", "lint_fixtures", "tree")

# Every finding the fixture tree must produce: (file, line, rule-id).
EXPECTED = {
    ("src/core/unordered_iter.cpp", 13, "unordered-iteration"),
    ("src/core/unordered_iter.cpp", 16, "unordered-iteration"),
    ("src/core/nondet.cpp", 13, "nondet-source"),
    ("src/core/nondet.cpp", 17, "nondet-source"),
    ("src/baselines/metrics_loop.cpp", 16, "metrics-slot-in-loop"),
    ("src/core/allowed.cpp", 21, "allow-needs-reason"),
    ("src/runner/journal.cpp", 1, "journal-schema-drift"),
}

# Lines that must NOT fire (benign look-alikes the rules must skip).
FORBIDDEN_SUBSTRINGS = (
    "src/core/allowed.cpp:14",   # the justified allow(unordered-iteration)
    "src/core/nondet.cpp:9",     # infection_time() is not time()
    "src/core/nondet.cpp:12",    # the infection_time call site
    "metrics_loop.cpp:14",       # hoisted .counter( outside the loop
)

FINDING_RE = re.compile(r"^(?P<file>[^:]+):(?P<line>\d+): \[(?P<rule>[a-z-]+)\]")


def main() -> int:
    proc = subprocess.run(
        [sys.executable, LINT, "--root", FIXTURES, "--engine", "tokens"],
        capture_output=True, text=True)
    out = proc.stdout
    failures = []

    if proc.returncode != 1:
        failures.append(
            f"expected exit code 1 (findings), got {proc.returncode}\n"
            f"stdout:\n{out}\nstderr:\n{proc.stderr}")

    got = set()
    for line in out.splitlines():
        m = FINDING_RE.match(line)
        if m:
            got.add((m.group("file").replace(os.sep, "/"),
                     int(m.group("line")), m.group("rule")))

    for exp in sorted(EXPECTED):
        if exp not in got:
            failures.append(f"missing expected finding: {exp[0]}:{exp[1]} "
                            f"[{exp[2]}]")
    for extra in sorted(got - EXPECTED):
        failures.append(f"unexpected finding: {extra[0]}:{extra[1]} "
                        f"[{extra[2]}]")
    for needle in FORBIDDEN_SUBSTRINGS:
        if needle in out:
            failures.append(f"benign line fired: {needle}")

    # The real tree must be clean — the gate the CI lint job relies on.
    real = subprocess.run(
        [sys.executable, LINT, "--root", ROOT, "--engine", "tokens"],
        capture_output=True, text=True)
    if real.returncode != 0:
        failures.append(
            f"real tree is not lint-clean (exit {real.returncode}):\n"
            f"{real.stdout}{real.stderr}")

    if failures:
        print("cobra_lint_selftest: FAIL")
        for f in failures:
            print(" -", f)
        print("\nfull fixture output:\n" + out)
        return 1
    print(f"cobra_lint_selftest: OK ({len(EXPECTED)} seeded findings "
          "matched, real tree clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
