#!/usr/bin/env python3
"""cobra-lint: determinism & concurrency checks the compiler cannot express.

The archive contract (byte-identical CSVs at every seed/scale/engine,
shard count, lane count and metrics mode) survives only if the code in
the deterministic zone -- src/core, src/baselines, src/rng -- never lets
platform-dependent behaviour leak into results.  This linter enforces the
rules that guard it:

  unordered-iteration   No iteration over std::unordered_map/unordered_set
                        in the deterministic zone: bucket order is
                        implementation-defined, so any fold over it is a
                        portability (and ASLR, with pointer keys) hazard.
  nondet-source         No rand()/srand(), std::random_device, time(),
                        clock(), gettimeofday() or std::hash over pointer
                        types in the deterministic zone: every draw must
                        come from the seeded rng:: streams.
  metrics-slot-in-loop  No metrics-slot resolution by name (.counter( /
                        .gauge( / .histogram() inside loop bodies in
                        src/core and src/baselines: name lookup takes the
                        registry mutex, and per-round hot loops must stay
                        lock-free (resolve ids once, like kernel_ids()).
  journal-schema-drift  The run-header field list (JournalHeader struct,
                        format_header()) and kJournalVersion must change
                        together.  A checked-in digest of the schema
                        (scripts/journal_schema.digest) trips when one
                        moves without the other.

Suppressions: a finding is allowed by a marker on its line or the line
above --

    // cobra-lint: allow(<rule-id>) -- <why this one is safe>

A marker without a justification is itself a violation (allow-needs-reason).

Engines: the default token engine needs nothing beyond Python.  When the
libclang bindings are importable (and ideally build/compile_commands.json
exists for flags), unordered-iteration upgrades to a type-accurate AST
check; everything else stays token-level.  The token engine is the one CI
gates on, so its verdicts are the contract.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import sys

# --- rule ids ---------------------------------------------------------------

RULE_UNORDERED = "unordered-iteration"
RULE_NONDET = "nondet-source"
RULE_METRICS = "metrics-slot-in-loop"
RULE_JOURNAL = "journal-schema-drift"
RULE_BARE_ALLOW = "allow-needs-reason"

ALL_RULES = (RULE_UNORDERED, RULE_NONDET, RULE_METRICS, RULE_JOURNAL)

# Directories (relative to the repo root) covered by each source rule.
DETERMINISTIC_ZONE = ("src/core", "src/baselines", "src/rng")
HOT_LOOP_ZONE = ("src/core", "src/baselines")

SOURCE_SUFFIXES = (".cpp", ".hpp", ".h", ".cc", ".cxx")

DIGEST_PATH = "scripts/journal_schema.digest"
JOURNAL_HPP = "src/runner/journal.hpp"
JOURNAL_CPP = "src/runner/journal.cpp"


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --- source preparation -----------------------------------------------------

def strip_comments_and_strings(text: str) -> str:
    """Blanks comments, string and char literals, preserving line structure
    so byte offsets still map to the original line numbers."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                close = text.find("(", i + 2)
                if close != -1:
                    raw_delim = ")" + text[i + 2:close] + '"'
                    state = "raw"
                    out.append(" " * (close + 1 - i))
                    i = close + 1
                    continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(" ")
                i += 1
        else:  # raw string
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


ALLOW_RE = re.compile(
    r"//\s*cobra-lint:\s*allow\(([a-z-]+)\)\s*(?:--|—)?\s*(\S?.*)$"
)


def collect_allows(original: str, path: str):
    """Returns ({line_no: {rule, ...}}, [Finding for bare markers]).

    A marker suppresses matching findings on its own line and the next
    line (so it can sit above the offending statement)."""
    allows: dict[int, set[str]] = {}
    findings: list[Finding] = []
    for line_no, line in enumerate(original.splitlines(), start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rule, why = m.group(1), m.group(2).strip()
        if not why:
            findings.append(Finding(
                path, line_no, RULE_BARE_ALLOW,
                f"allow({rule}) needs a justification: "
                "// cobra-lint: allow(%s) -- <why this one is safe>" % rule))
            continue
        allows.setdefault(line_no, set()).add(rule)
        allows.setdefault(line_no + 1, set()).add(rule)
    return allows, findings


def in_zone(rel_path: str, zone) -> bool:
    rel = rel_path.replace(os.sep, "/")
    return any(rel == d or rel.startswith(d + "/") for d in zone)


# --- rule: unordered-iteration (token engine) -------------------------------

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^()]*(?:\([^()]*\)[^()]*)*)\)")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def find_unordered_decl_names(stripped: str):
    """Names of variables/members declared with an unordered container
    type (token-level: the identifier after the closing template '>')."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(stripped):
        # Walk to the matching '>' of the template argument list.
        depth = 1
        i = m.end()
        while i < len(stripped) and depth > 0:
            if stripped[i] == "<":
                depth += 1
            elif stripped[i] == ">":
                depth -= 1
            i += 1
        tail = stripped[i:i + 160]
        dm = re.match(r"[&\s]*([A-Za-z_]\w*)\s*(?:[;={(,)]|$)", tail)
        if dm:
            names.add(dm.group(1))
    return names


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def check_unordered_iteration(stripped: str, path: str):
    findings = []
    names = find_unordered_decl_names(stripped)
    for m in RANGE_FOR_RE.finditer(stripped):
        header = m.group(1)
        if ":" not in header or ";" in header:
            continue  # classic for, not range-for
        range_expr = header.rsplit(":", 1)[1]
        hit = "unordered_" in range_expr
        if not hit:
            idents = set(IDENT_RE.findall(range_expr))
            hit = bool(idents & names)
        if hit:
            findings.append(Finding(
                path, line_of(stripped, m.start()), RULE_UNORDERED,
                "range-for over an unordered container: bucket order is "
                "implementation-defined and breaks the archive contract "
                "(iterate a sorted copy, or use std::map)"))
    for m in re.finditer(r"([A-Za-z_]\w*)\s*\.\s*c?begin\s*\(", stripped):
        if m.group(1) in names:
            findings.append(Finding(
                path, line_of(stripped, m.start()), RULE_UNORDERED,
                f"iteration over unordered container '{m.group(1)}' via "
                ".begin(): bucket order is implementation-defined "
                "(iterate a sorted copy, or use std::map)"))
    return findings


# --- rule: nondet-source ----------------------------------------------------

NONDET_PATTERNS = (
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\btime\s*\("), "time()"),
    (re.compile(r"\bclock\s*\("), "clock()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bhash\s*<[^<>;]*\*[^<>;]*>"), "std::hash over a pointer"),
)


def check_nondet_source(stripped: str, path: str):
    findings = []
    for pattern, label in NONDET_PATTERNS:
        for m in pattern.finditer(stripped):
            findings.append(Finding(
                path, line_of(stripped, m.start()), RULE_NONDET,
                f"{label} in the deterministic zone: results must depend "
                "only on the seeded rng:: streams (COBRA_SEED), never on "
                "wall time, the OS entropy pool or pointer values"))
    return findings


# --- rule: metrics-slot-in-loop ---------------------------------------------

METRICS_CALL_RE = re.compile(r"\.\s*(counter|gauge|histogram)\s*\(")
LOOP_KEYWORD_RE = re.compile(r"\b(for|while)\s*\(")


def loop_depth_at(stripped: str):
    """Maps byte offset -> number of enclosing loop-body braces.  Token
    level: a brace opened right after `for (...)`/`while (...)` counts as
    a loop body; do/while and brace-less bodies are approximated."""
    loop_spans = []
    stack = []  # (brace_char_is_loop)
    pending_loop = False
    depth_paren = 0
    i = 0
    n = len(stripped)
    starts = {m.start(): m for m in LOOP_KEYWORD_RE.finditer(stripped)}
    while i < n:
        if i in starts and depth_paren == 0:
            # Skip the loop header parens, then arm pending_loop.
            j = starts[i].end()  # just past the '('
            depth = 1
            while j < n and depth > 0:
                if stripped[j] == "(":
                    depth += 1
                elif stripped[j] == ")":
                    depth -= 1
                j += 1
            pending_loop = True
            i = j
            continue
        c = stripped[i]
        if c == "(":
            depth_paren += 1
        elif c == ")":
            depth_paren = max(0, depth_paren - 1)
        elif c == "{":
            stack.append((pending_loop, i))
            pending_loop = False
        elif c == "}":
            if stack:
                was_loop, start = stack.pop()
                if was_loop:
                    loop_spans.append((start, i))
        elif not c.isspace():
            if pending_loop:
                # Brace-less loop body: treat to end of statement.
                end = stripped.find(";", i)
                loop_spans.append((i, n if end == -1 else end))
                pending_loop = False
        i += 1
    return loop_spans


def check_metrics_in_loop(stripped: str, path: str):
    findings = []
    spans = loop_depth_at(stripped)
    for m in METRICS_CALL_RE.finditer(stripped):
        if any(start < m.start() < end for start, end in spans):
            findings.append(Finding(
                path, line_of(stripped, m.start()), RULE_METRICS,
                f".{m.group(1)}() resolves a metric slot by name inside a "
                "loop: name lookup takes the registry mutex — resolve the "
                "MetricId once outside the hot path (see kernel_ids())"))
    return findings


# --- rule: journal-schema-drift ---------------------------------------------

def extract_block(text: str, anchor_re: str, path: str) -> str:
    """The brace-balanced block starting at the first match of anchor_re."""
    m = re.search(anchor_re, text)
    if not m:
        raise RuntimeError(f"{path}: cannot find /{anchor_re}/ "
                           "(journal schema tripwire anchors moved?)")
    i = text.find("{", m.end() - 1)
    if i == -1:
        raise RuntimeError(f"{path}: no block after /{anchor_re}/")
    depth = 0
    start = i
    while i < len(text):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[start:i + 1]
        i += 1
    raise RuntimeError(f"{path}: unbalanced block after /{anchor_re}/")


def journal_schema(root: str):
    """Returns (version, digest) computed from the journal sources."""
    hpp_path = os.path.join(root, JOURNAL_HPP)
    cpp_path = os.path.join(root, JOURNAL_CPP)
    with open(hpp_path, encoding="utf-8") as f:
        hpp = f.read()
    with open(cpp_path, encoding="utf-8") as f:
        cpp = f.read()
    vm = re.search(r'kVersion\[\]\s*=\s*"([^"]+)"', cpp)
    if not vm:
        raise RuntimeError(f"{cpp_path}: cannot find kVersion")
    version = vm.group(1)
    header_struct = extract_block(
        strip_comments_and_strings(hpp), r"struct\s+JournalHeader\b", hpp_path)
    format_fn = extract_block(
        strip_comments_and_strings(cpp),
        r"std::string\s+format_header\s*\(", cpp_path)
    normalized = re.sub(r"\s+", " ", header_struct + "\n" + format_fn).strip()
    digest = hashlib.sha256(normalized.encode("utf-8")).hexdigest()
    return version, digest


def check_journal_schema(root: str):
    digest_path = os.path.join(root, DIGEST_PATH)
    rel_cpp = JOURNAL_CPP
    try:
        version, digest = journal_schema(root)
    except (OSError, RuntimeError) as e:
        return [Finding(rel_cpp, 1, RULE_JOURNAL, str(e))]
    if not os.path.exists(digest_path):
        return [Finding(
            DIGEST_PATH, 1, RULE_JOURNAL,
            "schema digest file is missing — run "
            "scripts/cobra_lint.py --update-schema-digest and commit it")]
    recorded = {}
    with open(digest_path, encoding="utf-8") as f:
        for line in f:
            parts = line.split()
            if len(parts) == 2:
                recorded[parts[0]] = parts[1]
    rec_version = recorded.get("version")
    rec_digest = recorded.get("digest")
    if rec_version == version and rec_digest == digest:
        return []
    if rec_digest != digest and rec_version == version:
        return [Finding(
            rel_cpp, 1, RULE_JOURNAL,
            "the run-header schema (JournalHeader fields / format_header) "
            f"changed but kVersion is still '{version}': old journals "
            "would be misparsed as the same version. Bump kVersion, teach "
            "resume/merge about the retirement, then run "
            "--update-schema-digest")]
    if rec_digest == digest and rec_version != version:
        return [Finding(
            rel_cpp, 1, RULE_JOURNAL,
            f"kVersion changed ('{rec_version}' -> '{version}') with no "
            "run-header schema change recorded. If the bump is real, "
            "refresh the digest: scripts/cobra_lint.py "
            "--update-schema-digest")]
    return [Finding(
        rel_cpp, 1, RULE_JOURNAL,
        f"run-header schema and kVersion both changed ('{rec_version}' -> "
        f"'{version}'). Review that resume/merge handle the retired "
        "version, then refresh the digest: scripts/cobra_lint.py "
        "--update-schema-digest")]


def update_schema_digest(root: str) -> int:
    version, digest = journal_schema(root)
    digest_path = os.path.join(root, DIGEST_PATH)
    os.makedirs(os.path.dirname(digest_path), exist_ok=True)
    with open(digest_path, "w", encoding="utf-8") as f:
        f.write("# Journal run-header schema digest — maintained by\n"
                "# scripts/cobra_lint.py --update-schema-digest.\n"
                "# Trips the journal-schema-drift lint when JournalHeader\n"
                "# or format_header() changes without a kVersion bump.\n"
                f"version {version}\n"
                f"digest {digest}\n")
    print(f"wrote {digest_path} (version {version})")
    return 0


# --- optional libclang engine for unordered-iteration ------------------------

def libclang_unordered(root: str, files, compile_commands):
    """Type-accurate range-for check via libclang; returns {path: findings}
    for files it could parse, or None when libclang is unavailable."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
    except Exception:
        return None
    flag_map = {}
    if compile_commands and os.path.exists(compile_commands):
        with open(compile_commands, encoding="utf-8") as f:
            for entry in json.load(f):
                args = entry.get("arguments") or entry.get("command", "").split()
                flag_map[os.path.abspath(entry["file"])] = [
                    a for a in args[1:]
                    if a.startswith(("-I", "-D", "-std", "-isystem"))]
    results = {}
    for rel in files:
        if not rel.endswith(".cpp"):
            continue
        full = os.path.join(root, rel)
        flags = flag_map.get(os.path.abspath(full),
                             ["-std=c++20", "-I" + os.path.join(root, "src")])
        try:
            tu = index.parse(full, args=flags)
        except Exception:
            continue
        if any(d.severity >= 4 for d in tu.diagnostics):
            continue  # fall back to tokens for this file
        found = []
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind != cindex.CursorKind.CXX_FOR_RANGE_STMT:
                continue
            if cursor.location.file is None or \
                    os.path.abspath(str(cursor.location.file)) != \
                    os.path.abspath(full):
                continue
            children = list(cursor.get_children())
            if not children:
                continue
            range_type = children[0].type.spelling
            if "unordered_" in range_type:
                found.append(Finding(
                    rel, cursor.location.line, RULE_UNORDERED,
                    f"range-for over {range_type}: bucket order is "
                    "implementation-defined and breaks the archive "
                    "contract"))
        results[rel] = found
    return results


# --- driver -----------------------------------------------------------------

def list_zone_files(root: str):
    files = []
    for zone_dir in sorted(set(DETERMINISTIC_ZONE + HOT_LOOP_ZONE)):
        base = os.path.join(root, zone_dir)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(SOURCE_SUFFIXES):
                    files.append(os.path.relpath(
                        os.path.join(dirpath, name), root))
    return sorted(files)


def lint(root: str, engine: str, compile_commands: str):
    files = list_zone_files(root)
    findings: list[Finding] = []

    clang_results = None
    if engine in ("auto", "libclang"):
        clang_results = libclang_unordered(root, files, compile_commands)
        if clang_results is None and engine == "libclang":
            print("cobra-lint: libclang requested but not importable",
                  file=sys.stderr)
            return None

    for rel in files:
        full = os.path.join(root, rel)
        with open(full, encoding="utf-8", errors="replace") as f:
            original = f.read()
        stripped = strip_comments_and_strings(original)
        allows, bare = collect_allows(original, rel)
        findings.extend(bare)
        raw: list[Finding] = []
        if in_zone(rel, DETERMINISTIC_ZONE):
            if clang_results is not None and rel in clang_results:
                raw.extend(clang_results[rel])
            else:
                raw.extend(check_unordered_iteration(stripped, rel))
            raw.extend(check_nondet_source(stripped, rel))
        if in_zone(rel, HOT_LOOP_ZONE):
            raw.extend(check_metrics_in_loop(stripped, rel))
        for f_ in raw:
            if f_.rule in allows.get(f_.line, ()):
                continue
            findings.append(f_)

    findings.extend(check_journal_schema(root))
    findings.sort(key=lambda f_: (f_.path, f_.line, f_.rule))
    return findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="cobra_lint.py",
        description="determinism & concurrency lints for the COBRA tree")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json for the libclang engine "
                             "(default: <root>/build/compile_commands.json)")
    parser.add_argument("--engine", choices=("auto", "tokens", "libclang"),
                        default="tokens",
                        help="analysis engine (default: tokens — the gated "
                             "verdicts; auto upgrades unordered-iteration "
                             "to libclang when importable)")
    parser.add_argument("--update-schema-digest", action="store_true",
                        help="regenerate scripts/journal_schema.digest from "
                             "the current journal sources and exit")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    compile_commands = args.compile_commands or os.path.join(
        root, "build", "compile_commands.json")

    try:
        if args.update_schema_digest:
            return update_schema_digest(root)
        findings = lint(root, args.engine, compile_commands)
    except (OSError, RuntimeError) as e:
        print(f"cobra-lint: error: {e}", file=sys.stderr)
        return 2
    if findings is None:
        return 2
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"cobra-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("cobra-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
