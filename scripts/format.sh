#!/usr/bin/env bash
# Applies (default) or checks (--check) the repo .clang-format over every
# first-party C++ file. The CI `lint` job runs `scripts/format.sh --check`;
# exits 0 when clang-format is unavailable locally so ad-hoc containers
# without the LLVM frontend are not blocked — CI installs the real thing.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
mode="apply"
if [ "${1:-}" = "--check" ]; then
  mode="check"
fi

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format: clang-format not found on PATH; skipping (CI runs it)" >&2
  exit 0
fi

mapfile -t files < <(cd "$root" && find src bench examples tests \
  \( -name '*.cpp' -o -name '*.hpp' -o -name '*.h' \) \
  -not -path 'tests/lint_fixtures/*' | sort)

if [ "$mode" = "check" ]; then
  status=0
  for f in "${files[@]}"; do
    if ! clang-format --style=file --dry-run -Werror "$root/$f" \
        >/dev/null 2>&1; then
      echo "format: needs reformat: $f"
      status=1
    fi
  done
  if [ "$status" -ne 0 ]; then
    echo "format: run scripts/format.sh to fix" >&2
  fi
  exit "$status"
fi

for f in "${files[@]}"; do
  clang-format --style=file -i "$root/$f"
done
echo "format: formatted ${#files[@]} files"
