#!/usr/bin/env python3
"""Regression-threshold checks for the committed benchmark baselines.

Three suites, selected with --suite (default: step). Each guards one
fast-vs-slow pair that encodes the suite's headline claim:

  step      bench_results/BENCH_step.json, produced by micro_cobra. The
            guarded pair is dense vs reference for the steady-state COBRA
            round on the largest b = 2 random-regular graph
            (BM_CobraStep, regular_262144_r8).
  bips      bench_results/BENCH_bips.json, produced by micro_bips. The
            guarded pair is dense vs reference for the
            full-infection-trajectory BIPS round (BM_BipsRound,
            regular_65536_r8).
  graph_io  bench_results/BENCH_graph_io.json, produced by
            micro_graphgen. The guarded pair is mmap_open vs generate for
            regular_262144_r8 (BM_GraphIo*): opening a pre-baked .cgr
            must beat regenerating the graph in-process, the point of the
            out-of-core format.
  metrics   bench_results/BENCH_metrics.json, produced by micro_metrics.
            Inverted (overhead) semantics: the off-mode dense step
            (BM_MetricsStep, regular_262144_r8/dense/off) must stay
            within --max-overhead (default 0.02 = +2%) of the
            BM_CobraStep dense entry in the step baseline passed via
            --step-baseline — compiled-in telemetry behind a null check
            must be free when the mode is off. Both files must have been
            generated on the same machine (regenerate them together).
  step_threads / bips_threads
            The in-round lane-scaling axes (BM_CobraStepThreads /
            BM_BipsRoundThreads, dense engine on the largest graph). Two
            claims: (a) the lane machinery at kernel_threads = 1 adds at
            most --max-overhead (default 0.02 = +2%) over the plain
            serial dense entry in the same file, always enforced; (b)
            threads_4 is at least --min-speedup times faster than
            threads_1 — enforced only when the file's context.num_cpus
            shows the generating machine had >= 4 CPUs, and loudly
            SKIPPED otherwise (a 1-CPU box cannot measure scaling; the
            overhead ceiling is the portable half of the gate).

Two modes:

  check_step_bench.py [--suite S] BASELINE.json
      Validates the committed baseline: the suite's fast variant must be
      at least --min-speedup (default 2.0) times faster than its slow
      variant on the guarded pair (runs in ctest as the
      `bench_*_baseline_check` tests).

  check_step_bench.py [--suite S] BASELINE.json FRESH.json [--tolerance 0.30]
      Compares a fresh benchmark JSON against the baseline: any shared
      benchmark whose per-iteration real_time regressed by more than the
      tolerance fails the check. Only meaningful on hardware comparable to
      the baseline's; CI uses the single-file mode with a reduced
      --min-speedup instead, so heterogeneous runners compare engine
      ratios measured on the same box.

Regenerate the baselines with:
  ./build/bench/micro_cobra --benchmark_out=bench_results/BENCH_step.json \
      --benchmark_out_format=json
  ./build/bench/micro_bips --benchmark_out=bench_results/BENCH_bips.json \
      --benchmark_out_format=json
  ./build/bench/micro_graphgen --benchmark_filter='BM_GraphIo' \
      --benchmark_out=bench_results/BENCH_graph_io.json \
      --benchmark_out_format=json
  ./build/bench/micro_metrics \
      --benchmark_out=bench_results/BENCH_metrics.json \
      --benchmark_out_format=json
"""

import argparse
import json
import sys

# The guarded (bench prefix, graph label, slow/fast variant) per suite;
# the micro_* binaries keep these labels stable. Guarded pairs must share
# one time unit — the comparison uses real_time verbatim.
SUITES = {
    "step": {"prefix": "BM_CobraStep/", "graph": "regular_262144_r8",
             "slow": "reference", "fast": "dense"},
    "bips": {"prefix": "BM_BipsRound/", "graph": "regular_65536_r8",
             "slow": "reference", "fast": "dense"},
    "graph_io": {"prefix": "BM_GraphIo", "graph": "regular_262144_r8",
                 "slow": "generate", "fast": "mmap_open"},
    # The metrics suite is handled by check_metrics_overhead (inverted
    # semantics: an upper bound on a ratio, not a lower bound).
    "metrics": {"prefix": "BM_MetricsStep/", "graph": "regular_262144_r8"},
    # The *_threads suites are handled by check_thread_scaling: an
    # overhead ceiling against the serial entry plus a CPU-gated
    # threads_4-vs-threads_1 speedup floor.
    "step_threads": {"prefix": "BM_CobraStepThreads/",
                     "graph": "regular_262144_r8",
                     "serial_prefix": "BM_CobraStep/",
                     "serial_label": "regular_262144_r8/dense"},
    "bips_threads": {"prefix": "BM_BipsRoundThreads/",
                     "graph": "regular_65536_r8",
                     "serial_prefix": "BM_BipsRound/",
                     "serial_label": "regular_65536_r8/dense"},
}

THREAD_SUITES = ("step_threads", "bips_threads")
SCALING_THREADS = 4  # the gated lane count of the *_threads suites


def check_thread_scaling(benches, context, suite, min_speedup,
                         max_overhead):
    """Lane machinery must be free at 1 lane and scale when CPUs exist."""
    s = SUITES[suite]
    serial = step_time(benches, s["serial_prefix"], s["serial_label"])
    t1 = step_time(benches, s["prefix"], f"{s['graph']}/dense/threads_1")
    overhead = t1 / serial - 1.0
    print(
        f"[{suite}] {s['graph']} dense: serial {serial:.0f}, "
        f"threads_1 {t1:.0f}, overhead {overhead:+.1%} "
        f"(allowed <= +{max_overhead:.0%})"
    )
    for threads in (2, SCALING_THREADS, 8):
        label = f"{s['graph']}/dense/threads_{threads}"
        for b in benches:
            if b["name"].startswith(s["prefix"]) and b.get("label") == label:
                print(f"[{suite}]   threads_{threads}: "
                      f"{b['real_time']:.0f} "
                      f"({t1 / b['real_time']:.2f}x threads_1)")
    if overhead > max_overhead:
        sys.exit(f"FAIL: single-thread lane overhead {overhead:+.1%} "
                 f"> +{max_overhead:.0%}")
    num_cpus = context.get("num_cpus", 0)
    if num_cpus < SCALING_THREADS:
        print(f"[{suite}] SKIPPED scaling floor: generating machine had "
              f"{num_cpus} CPU(s) < {SCALING_THREADS} — a box that cannot "
              f"run {SCALING_THREADS} lanes in parallel cannot measure "
              f"their speedup (the overhead ceiling above still holds)")
        print("OK")
        return
    tN = step_time(benches, s["prefix"],
                   f"{s['graph']}/dense/threads_{SCALING_THREADS}")
    speedup = t1 / tN
    print(
        f"[{suite}] threads_{SCALING_THREADS} speedup over threads_1: "
        f"{speedup:.2f}x (required >= {min_speedup:.2f}x, "
        f"num_cpus {num_cpus})"
    )
    if speedup < min_speedup:
        sys.exit(f"FAIL: {SCALING_THREADS}-lane speedup {speedup:.2f}x "
                 f"< {min_speedup}x")
    print("OK")


def check_metrics_overhead(benches, step_benches, max_overhead):
    """Off-mode telemetry must be free on the dense steady-state step."""
    off = step_time(benches, "BM_MetricsStep/",
                    "regular_262144_r8/dense/off")
    base = step_time(step_benches, "BM_CobraStep/",
                     "regular_262144_r8/dense")
    overhead = off / base - 1.0
    print(
        f"[metrics] regular_262144_r8 dense step: off-mode {off:.0f}, "
        f"step baseline {base:.0f}, overhead {overhead:+.1%} "
        f"(allowed <= +{max_overhead:.0%})"
    )
    for mode in ("summary", "rounds"):
        t = step_time(benches, "BM_MetricsStep/",
                      f"regular_262144_r8/dense/{mode}")
        print(f"[metrics]   {mode} mode: {t:.0f} ({t / off:.2f}x off)")
    if overhead > max_overhead:
        sys.exit(f"FAIL: disabled-mode telemetry overhead {overhead:+.1%} "
                 f"> +{max_overhead:.0%}")
    print("OK")


def load_doc(path):
    """Returns (iteration benchmarks, context dict) of a benchmark JSON."""
    with open(path) as f:
        doc = json.load(f)
    benches = [
        b
        for b in doc.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    ]
    if not benches:
        sys.exit(f"{path}: no benchmark entries found")
    return benches, doc.get("context", {})


def load(path):
    return load_doc(path)[0]


def step_time(benches, prefix, label):
    for b in benches:
        if b["name"].startswith(prefix) and b.get("label") == label:
            return b["real_time"]
    sys.exit(f"missing {prefix}* entry labelled {label!r}")


def check_baseline(benches, suite, min_speedup):
    s = SUITES[suite]
    slow = step_time(benches, s["prefix"], f"{s['graph']}/{s['slow']}")
    fast = step_time(benches, s["prefix"], f"{s['graph']}/{s['fast']}")
    speedup = slow / fast
    print(
        f"[{suite}] {s['graph']}: {s['slow']} {slow:.0f}, "
        f"{s['fast']} {fast:.0f}, speedup {speedup:.2f}x "
        f"(required >= {min_speedup:.2f}x)"
    )
    if speedup < min_speedup:
        sys.exit(f"FAIL: {s['fast']} speedup over {s['slow']} "
                 f"{speedup:.2f}x < {min_speedup}x")
    print("OK")


def check_regression(baseline, fresh, tolerance):
    base_by_key = {(b["name"], b.get("label", "")): b for b in baseline}
    failures = []
    compared = 0
    for b in fresh:
        key = (b["name"], b.get("label", ""))
        if key not in base_by_key:
            continue
        compared += 1
        base_time = base_by_key[key]["real_time"]
        ratio = b["real_time"] / base_time
        if ratio > 1.0 + tolerance:
            failures.append(f"{b['name']} [{b.get('label', '')}]: "
                            f"{ratio:.2f}x baseline")
    print(f"compared {compared} benchmarks against baseline "
          f"(tolerance +{tolerance:.0%})")
    if compared == 0:
        sys.exit("FAIL: no overlapping benchmarks between the two files")
    if failures:
        print("\n".join("REGRESSED: " + f for f in failures))
        sys.exit(f"FAIL: {len(failures)} benchmark(s) regressed")
    print("OK")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("fresh", nargs="?",
                        help="fresh benchmark JSON to compare (optional)")
    parser.add_argument("--suite", choices=sorted(SUITES), default="step",
                        help="which guarded pair to validate (default step)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required dense/reference speedup (default 2.0)")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed per-benchmark slowdown vs baseline "
                             "(default 0.30 = +30%%)")
    parser.add_argument("--step-baseline",
                        help="BENCH_step.json to compare against "
                             "(metrics suite only)")
    parser.add_argument("--max-overhead", type=float, default=0.02,
                        help="allowed off-mode overhead over the step "
                             "baseline (metrics suite; default 0.02 = +2%%)")
    args = parser.parse_args()

    baseline, context = load_doc(args.baseline)
    if args.suite == "metrics":
        if args.step_baseline is None:
            sys.exit("--suite metrics requires --step-baseline "
                     "BENCH_step.json")
        check_metrics_overhead(baseline, load(args.step_baseline),
                               args.max_overhead)
    elif args.suite in THREAD_SUITES:
        check_thread_scaling(baseline, context, args.suite,
                             args.min_speedup, args.max_overhead)
    elif args.fresh is None:
        check_baseline(baseline, args.suite, args.min_speedup)
    else:
        check_regression(baseline, load(args.fresh), args.tolerance)


if __name__ == "__main__":
    main()
